"""Restriction of the DDS search to candidate S/T vertex sets.

Both the flow-based exact algorithms and the peeling algorithms never need
the whole graph — they need the bipartite-like structure
``(S_candidates, T_candidates, E ∩ (S_candidates × T_candidates))``.
:class:`STSubproblem` materialises exactly that once and lets the solvers
reuse it, which is also where the core-based pruning plugs in: CoreExact
simply builds sub-problems from [x, y]-cores instead of from ``V × V``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.digraph import DiGraph


@dataclass
class STSubproblem:
    """Candidate S-side nodes, candidate T-side nodes, and the edges between them.

    Node identifiers are **graph internal indices** throughout; conversion to
    labels happens only when a final :class:`~repro.core.results.DDSResult` is
    assembled.
    """

    graph: DiGraph
    s_candidates: list[int]
    t_candidates: list[int]
    edges: list[tuple[int, int]] = field(default_factory=list)
    _token: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Captured eagerly: the token must record the graph state the edges
        # were carved from, not whatever state exists when a cache first asks.
        self._token = (
            self.graph.state_token,
            tuple(self.s_candidates),
            tuple(self.t_candidates),
            len(self.edges),
        )

    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        s_candidates: Sequence[int] | None = None,
        t_candidates: Sequence[int] | None = None,
    ) -> "STSubproblem":
        """Build a sub-problem; ``None`` candidate sets default to all nodes.

        Vertices with no outgoing edge into the T candidates (resp. no
        incoming edge from the S candidates) are dropped immediately — they
        can never appear in an optimal ``S`` (resp. ``T``) because removing
        them strictly increases the density.
        """
        all_nodes = list(range(graph.num_nodes))
        s_list = list(s_candidates) if s_candidates is not None else all_nodes
        t_list = list(t_candidates) if t_candidates is not None else all_nodes
        t_set = set(t_list)
        s_set = set(s_list)

        edges = [
            (u, v)
            for u in s_list
            for v in graph.out_adj[u]
            if v in t_set
        ]
        useful_s = {u for u, _ in edges}
        useful_t = {v for _, v in edges}
        s_kept = [u for u in s_list if u in useful_s]
        t_kept = [v for v in t_list if v in useful_t]
        # Edges are already restricted to s_list x t_list; restricting the
        # candidate lists to the useful vertices does not drop any edge.
        del s_set
        return cls(graph=graph, s_candidates=s_kept, t_candidates=t_kept, edges=edges)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges available to the sub-problem."""
        return len(self.edges)

    @property
    def is_empty(self) -> bool:
        """True when no edge (hence no non-trivial pair) remains."""
        return not self.edges or not self.s_candidates or not self.t_candidates

    def out_degrees(self) -> dict[int, int]:
        """Out-degree (within the sub-problem) of every S candidate."""
        degrees = {u: 0 for u in self.s_candidates}
        for u, _ in self.edges:
            degrees[u] += 1
        return degrees

    def in_degrees(self) -> dict[int, int]:
        """In-degree (within the sub-problem) of every T candidate."""
        degrees = {v: 0 for v in self.t_candidates}
        for _, v in self.edges:
            degrees[v] += 1
        return degrees

    def restricted_to(
        self, s_allowed: Sequence[int], t_allowed: Sequence[int]
    ) -> "STSubproblem":
        """Sub-problem further restricted to the given candidate index sets."""
        s_set = set(s_allowed)
        t_set = set(t_allowed)
        edges = [(u, v) for u, v in self.edges if u in s_set and v in t_set]
        useful_s = {u for u, _ in edges}
        useful_t = {v for _, v in edges}
        return STSubproblem(
            graph=self.graph,
            s_candidates=[u for u in self.s_candidates if u in useful_s],
            t_candidates=[v for v in self.t_candidates if v in useful_t],
            edges=edges,
        )

    def size_signature(self) -> tuple[int, int, int]:
        """``(|S candidates|, |T candidates|, |edges|)`` — used by instrumentation."""
        return (len(self.s_candidates), len(self.t_candidates), len(self.edges))

    def cache_token(self) -> tuple:
        """Hashable identity of this search space, usable as a cache key.

        Two sub-problems with equal tokens were carved from the *same graph
        state* (:attr:`~repro.graph.digraph.DiGraph.state_token`) with the
        same candidate sets, hence hold identical edge sets — so derived
        structures (decision networks) built from one are valid for the
        other.  Captured at construction time; sub-problems are treated as
        immutable afterwards.
        """
        return self._token
