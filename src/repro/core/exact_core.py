"""``CoreExact`` — the paper's headline exact algorithm.

CoreExact is the divide-and-conquer driver of :mod:`repro.core.exact_dc`
with both core-based optimisations switched on:

* the incumbent (and hence every pruning threshold and the global upper
  bound) is seeded from the maximum-product [x, y]-core, which is already a
  2-approximation, and
* for every ratio interval the flow networks are built only on the
  [x, y]-core that must contain any optimum beating the incumbent whose
  ratio falls in that interval (:func:`repro.core.bounds.containing_core`),
  so the networks shrink as the incumbent improves — the effect measured by
  experiment E7.
"""

from __future__ import annotations

from repro.core.exact_dc import LEAF_RATIO_COUNT, _dc_driver
from repro.core.results import DDSResult
from repro.flow.registry import DEFAULT_SOLVER
from repro.graph.digraph import DiGraph


def core_exact(
    graph: DiGraph,
    tolerance: float | None = None,
    leaf_ratio_count: int = LEAF_RATIO_COUNT,
    flow_solver: str = DEFAULT_SOLVER,
) -> DDSResult:
    """Exact DDS with core-based pruning and core-restricted flow networks.

    ``flow_solver`` selects the max-flow backend by registry name
    (see :mod:`repro.flow.registry`).
    """
    return _dc_driver(
        graph,
        method="core-exact",
        use_core_restriction=True,
        seed_with_core=True,
        tolerance=tolerance,
        leaf_ratio_count=leaf_ratio_count,
        flow_solver=flow_solver,
    )
