"""``CoreExact`` — the paper's headline exact algorithm.

CoreExact is the divide-and-conquer driver of :mod:`repro.core.exact_dc`
with both core-based optimisations switched on:

* the incumbent (and hence every pruning threshold and the global upper
  bound) is seeded from the maximum-product [x, y]-core, which is already a
  2-approximation, and
* for every ratio interval the flow networks are built only on the
  [x, y]-core that must contain any optimum beating the incumbent whose
  ratio falls in that interval (:func:`repro.core.bounds.containing_core`),
  so the networks shrink as the incumbent improves — the effect measured by
  experiment E7.
"""

from __future__ import annotations

from repro.core.config import ExactConfig
from repro.core.exact_dc import LEAF_RATIO_COUNT, _dc_driver
from repro.core.network_cache import NetworkCache
from repro.core.results import DDSResult
from repro.flow.engine import FlowEngine
from repro.graph.digraph import DiGraph

__all__ = ["LEAF_RATIO_COUNT", "core_exact"]


def core_exact(
    graph: DiGraph,
    config: ExactConfig | None = None,
    *,
    tolerance: float | None = None,
    leaf_ratio_count: int | None = None,
    flow_solver: str | None = None,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
) -> DDSResult:
    """Exact DDS with core-based pruning and core-restricted flow networks.

    ``config`` is the normalized :class:`~repro.core.config.ExactConfig`
    (its ``seed_with_core`` flag is ignored here — CoreExact always seeds
    from the core); the keyword arguments are legacy per-field overrides.
    ``engine`` / ``network_cache`` are the session warm-start hooks, and
    ``config.flow.warm_start`` lets each min-cut continue from the previous
    guess's residual flow.
    """
    cfg = ExactConfig.resolve(
        config,
        tolerance=tolerance,
        leaf_ratio_count=leaf_ratio_count,
        flow_solver=flow_solver,
    )
    if network_cache is None:
        network_cache = NetworkCache(cfg.flow.network_cache_size)
    return _dc_driver(
        graph,
        method="core-exact",
        use_core_restriction=True,
        seed_with_core=True,
        tolerance=cfg.tolerance,
        leaf_ratio_count=cfg.leaf_ratio_count,
        flow_solver=cfg.flow.solver,
        engine=engine,
        network_cache=network_cache,
        warm_start=cfg.flow.warm_start,
        batch_size=cfg.flow.batch_size,
    )
