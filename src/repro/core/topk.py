"""Top-k densest directed subgraphs (edge-disjoint, greedy).

The paper's applications (community role analysis, fraud detection) usually
need more than one dense region.  The standard practical recipe — also used
by the undirected DSD literature — is the greedy *find, remove, repeat* loop:
find the densest pair, delete the edges it covers, and repeat until ``k``
pairs have been found or the graph runs out of edges.  Successive pairs are
therefore **edge-disjoint** (they may share vertices), and the first pair is
exactly the DDS of the original graph.

The loop itself lives on :meth:`repro.session.DDSSession.top_k`, where the
first round shares the session's result cache with plain
``densest_subgraph`` queries; this module keeps the historical one-shot
function as a thin delegate.
"""

from __future__ import annotations

import warnings

from repro.core.results import DDSResult
from repro.graph.digraph import DiGraph


def top_k_densest(
    graph: DiGraph,
    k: int,
    method: str = "auto",
    min_density: float = 0.0,
    **kwargs,
) -> list[DDSResult]:
    """Greedily extract up to ``k`` edge-disjoint dense pairs.

    One-shot form of :meth:`repro.session.DDSSession.top_k` (a throwaway
    session is constructed per call; prefer a long-lived session when mixing
    top-k with other queries on the same graph).

    Parameters
    ----------
    graph:
        Input digraph (not modified — the peeling happens on a working copy).
    k:
        Maximum number of pairs to return.
    method:
        Any registered method name (or ``"auto"``); the same method is used
        for every round.
    min_density:
        Stop early once the best remaining density drops to this value or
        below (useful to cut off the uninteresting tail).
    **kwargs:
        ``config=`` or legacy per-field overrides, as accepted by
        :meth:`~repro.session.DDSSession.densest_subgraph`.

    Returns
    -------
    list[DDSResult]
        Between 0 and ``k`` results, in non-increasing density order (the
        greedy loop guarantees monotonicity because removing edges can only
        lower the remaining optimum).
    """
    from repro.session import DDSSession

    warnings.warn(
        "top_k_densest() is deprecated; use repro.session.DDSSession.top_k for "
        "cached multi-query access",
        DeprecationWarning,
        stacklevel=2,
    )
    return DDSSession(graph).top_k(k, method=method, min_density=min_density, **kwargs)
