"""Top-k densest directed subgraphs (edge-disjoint, greedy).

The paper's applications (community role analysis, fraud detection) usually
need more than one dense region.  The standard practical recipe — also used
by the undirected DSD literature — is the greedy *find, remove, repeat* loop:
find the densest pair, delete the edges it covers, and repeat until ``k``
pairs have been found or the graph runs out of edges.  Successive pairs are
therefore **edge-disjoint** (they may share vertices), and the first pair is
exactly the DDS of the original graph.
"""

from __future__ import annotations

from repro.core.api import densest_subgraph
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.utils.validation import require_positive_int


def top_k_densest(
    graph: DiGraph,
    k: int,
    method: str = "auto",
    min_density: float = 0.0,
    **kwargs,
) -> list[DDSResult]:
    """Greedily extract up to ``k`` edge-disjoint dense pairs.

    Parameters
    ----------
    graph:
        Input digraph (not modified — the peeling happens on a working copy).
    k:
        Maximum number of pairs to return.
    method:
        Any method accepted by :func:`repro.core.api.densest_subgraph`; the
        same method is used for every round.
    min_density:
        Stop early once the best remaining density drops to this value or
        below (useful to cut off the uninteresting tail).
    **kwargs:
        Forwarded to the underlying solver.

    Returns
    -------
    list[DDSResult]
        Between 0 and ``k`` results, in non-increasing density order (the
        greedy loop guarantees monotonicity because removing edges can only
        lower the remaining optimum).
    """
    require_positive_int(k, "k")
    if min_density < 0:
        raise AlgorithmError(f"min_density must be >= 0, got {min_density}")
    if graph.num_edges == 0:
        raise EmptyGraphError("top_k_densest requires a graph with at least one edge")

    working = graph.copy()
    results: list[DDSResult] = []
    for _ in range(k):
        if working.num_edges == 0:
            break
        result = densest_subgraph(working, method=method, **kwargs)
        if result.density <= min_density:
            break
        results.append(result)
        # Remove exactly the edges of the reported pair so later rounds are
        # edge-disjoint from every earlier answer.
        s_indices = working.indices_of(result.s_nodes)
        t_indices = working.indices_of(result.t_nodes)
        for u, v in working.edges_between(s_indices, t_indices):
            working.remove_edge(working.label_of(u), working.label_of(v))
    return results
