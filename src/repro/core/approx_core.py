"""Core-based approximation algorithms (``CoreApprox`` and ``IncApprox``).

``CoreApprox`` returns the non-empty [x, y]-core with maximum product
``x * y``.  By the density lower bound its density is at least
``sqrt(x*y)``, and by the containment lemma ``sqrt(max x*y) >= rho_opt/2``,
so the returned pair is a deterministic 2-approximation — computed without a
single max-flow call.

``IncApprox`` is the straightforward variant that derives the same core from
the *full* skyline decomposition (computing ``y_max(x)`` for every ``x``
without any skipping); it returns the same answer but does strictly more
work, mirroring the "incremental decomposition" baseline the paper compares
against in its approximation-efficiency experiment (our E3).
"""

from __future__ import annotations

import math

from repro.core.bounds import core_based_bounds
from repro.core.config import ApproxConfig
from repro.core.density import directed_density_from_indices
from repro.core.results import DDSResult
from repro.core.xycore import xy_core, xy_core_skyline
from repro.exceptions import EmptyGraphError
from repro.graph.digraph import DiGraph


def core_approx(graph: DiGraph, config: ApproxConfig | None = None) -> DDSResult:
    """2-approximate DDS: the maximum-product [x, y]-core (``CoreApprox``).

    ``config`` is accepted for signature uniformity across the method
    registry; CoreApprox is parameter-free, so only the config's *type* is
    validated.
    """
    ApproxConfig.resolve(config)
    if graph.num_edges == 0:
        raise EmptyGraphError("core_approx requires a graph with at least one edge")
    bounds = core_based_bounds(graph)
    core = bounds.core
    return DDSResult(
        s_nodes=graph.labels_of(core.s_nodes),
        t_nodes=graph.labels_of(core.t_nodes),
        density=bounds.core_density,
        edge_count=graph.count_edges_between(core.s_nodes, core.t_nodes),
        method="core-approx",
        is_exact=False,
        approximation_ratio=2.0,
        stats={
            "core_x": core.x,
            "core_y": core.y,
            "density_lower_bound": bounds.lower,
            "density_upper_bound": bounds.upper,
        },
    )


def inc_approx(graph: DiGraph, config: ApproxConfig | None = None) -> DDSResult:
    """2-approximate DDS via the full skyline decomposition (``IncApprox``)."""
    ApproxConfig.resolve(config)
    if graph.num_edges == 0:
        raise EmptyGraphError("inc_approx requires a graph with at least one edge")
    skyline = xy_core_skyline(graph)
    best_x, best_y = max(skyline, key=lambda pair: pair[0] * pair[1])
    core = xy_core(graph, best_x, best_y)
    density = directed_density_from_indices(graph, core.s_nodes, core.t_nodes)
    return DDSResult(
        s_nodes=graph.labels_of(core.s_nodes),
        t_nodes=graph.labels_of(core.t_nodes),
        density=density,
        edge_count=graph.count_edges_between(core.s_nodes, core.t_nodes),
        method="inc-approx",
        is_exact=False,
        approximation_ratio=2.0,
        stats={
            "core_x": best_x,
            "core_y": best_y,
            "skyline_size": len(skyline),
            "density_lower_bound": math.sqrt(best_x * best_y),
        },
    )
