"""First-class registry of DDS methods (the analogue of the flow-solver registry).

Historically the public dispatch lived in a private ``_METHODS`` dict inside
:mod:`repro.core.api`, with an untyped ``**kwargs`` funnel and hard-coded
knowledge of which methods run min-cuts.  This module promotes it to a
declarative plugin registry mirroring :mod:`repro.flow.registry`: each
algorithm registers a :class:`MethodSpec` carrying

* its **runner** — a uniform callable ``(graph, config, context) -> DDSResult``,
* its accepted **config type** (:class:`~repro.core.config.ExactConfig` or
  :class:`~repro.core.config.ApproxConfig`), and
* **capability flags**: exactness, whether it is flow-backed (runs min-cuts,
  hence honours ``FlowConfig.solver``), and whether it supports warm starts
  (accepts a shared :class:`~repro.flow.engine.FlowEngine` and
  :class:`~repro.core.network_cache.NetworkCache` — the hooks
  :class:`~repro.session.DDSSession` uses to reuse state, including
  *residual flows*, across queries; see :class:`MethodSpec`).

Third-party algorithms plug in without touching the session or the CLI::

    from repro.core.method_registry import MethodSpec, register_method

    register_method(MethodSpec(
        name="my-heuristic",
        runner=lambda graph, config, context: my_heuristic(graph, config),
        config_type=ApproxConfig,
        is_exact=False,
        flow_backed=False,
        supports_warm_start=False,
        description="my custom densest-subgraph heuristic",
    ))
    DDSSession(graph).densest_subgraph("my-heuristic")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.approx_core import core_approx, inc_approx
from repro.core.approx_peel import peel_approx
from repro.core.bruteforce import brute_force_dds
from repro.core.config import ApproxConfig, ExactConfig, MethodConfig
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.core.network_cache import NetworkCache
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError
from repro.flow.engine import FlowEngine
from repro.graph.digraph import DiGraph


@dataclass
class RunContext:
    """Shared per-session runtime state handed to warm-start-capable runners."""

    engine: FlowEngine | None = None
    network_cache: NetworkCache | None = None


#: Runner protocol: ``(graph, config, context) -> DDSResult``.
MethodRunner = Callable[[DiGraph, MethodConfig, RunContext], DDSResult]


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one registered DDS method.

    Attributes
    ----------
    name:
        Registry key (the public method name, e.g. ``"core-exact"``).
    runner:
        Uniform entry point ``(graph, config, context) -> DDSResult``.
    config_type:
        The config dataclass this method accepts; queries are validated
        against it before the runner is invoked.
    is_exact:
        Whether the method guarantees optimality.
    flow_backed:
        Whether the method runs min-cuts (and therefore honours
        ``FlowConfig.solver``; non-flow-backed methods ignore — and report —
        an explicitly requested solver).
    supports_warm_start:
        Whether the runner consumes ``context.engine`` /
        ``context.network_cache`` to share state across queries.  This flag
        is load-bearing: the session only hands its shared
        :class:`~repro.core.network_cache.NetworkCache` — whose entries now
        carry *residual flow state* between retunes — to methods that
        declare it, and it normalises ``FlowConfig.warm_start`` to ``False``
        in the resolved config of methods that don't (so warm and cold
        variants of such a query share one result-cache entry, and a runner
        that ignores the hooks is never believed to warm start).
    description:
        One-line human-readable summary (shown by ``dds-repro`` help texts).
    accepted_fields:
        The config fields this method actually consults (``None`` = all of
        them).  The session rejects queries that set an unused field to a
        non-default value — a knob that silently does nothing is worse than
        an error.  ``flow`` is special-cased by the session: on a
        non-flow-backed method it is *ignored with a warning* (legacy
        ``flow_solver_ignored`` behaviour) rather than rejected.
    """

    name: str
    runner: MethodRunner = field(repr=False)
    config_type: type
    is_exact: bool
    flow_backed: bool
    supports_warm_start: bool
    description: str = ""
    accepted_fields: frozenset[str] | None = None


_REGISTRY: dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec) -> None:
    """Register (or replace) a method under ``spec.name``."""
    if not spec.name:
        raise AlgorithmError("method name must be non-empty")
    if not callable(spec.runner):
        raise AlgorithmError(f"runner for {spec.name!r} must be callable")
    if not (isinstance(spec.config_type, type) and issubclass(spec.config_type, MethodConfig)):
        raise AlgorithmError(
            f"config_type for {spec.name!r} must be a MethodConfig subclass, "
            f"got {spec.config_type!r}"
        )
    if spec.config_type.__hash__ is None:
        # Sessions key their result cache by (method, config); a non-frozen
        # dataclass (eq=True sets __hash__ = None) would crash at query time.
        raise AlgorithmError(
            f"config_type for {spec.name!r} must be hashable — "
            "declare it as a frozen dataclass"
        )
    _REGISTRY[spec.name] = spec


def unregister_method(name: str) -> None:
    """Remove a registered method (built-ins included — use with care)."""
    if name not in _REGISTRY:
        raise AlgorithmError(f"unknown method {name!r}")
    del _REGISTRY[name]


def available_methods() -> list[str]:
    """Registered method names, sorted (``"auto"`` is handled by the session)."""
    return sorted(_REGISTRY)


def method_specs() -> list[MethodSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in available_methods()]


def get_method_spec(name: str) -> MethodSpec:
    """Look up a spec by registry name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise AlgorithmError(
            f"unknown method {name!r}; available: {', '.join(available_methods())} or 'auto'"
        )
    return spec


# ----------------------------------------------------------------------
# Built-in method registrations.
# ----------------------------------------------------------------------
def _run_flow_exact(graph: DiGraph, config: ExactConfig, context: RunContext) -> DDSResult:
    # flow-exact visits every (subproblem, ratio) key exactly once, so its
    # networks are never reusable; a private cache keeps its O(n^2) single-use
    # entries from evicting the session's reusable dc/core/fixed-ratio
    # networks.  The shared engine still aggregates instrumentation.
    return flow_exact(
        graph,
        config,
        engine=context.engine,
        network_cache=NetworkCache(config.flow.network_cache_size),
    )


def _run_dc_exact(graph: DiGraph, config: ExactConfig, context: RunContext) -> DDSResult:
    return dc_exact(graph, config, engine=context.engine, network_cache=context.network_cache)


def _run_core_exact(graph: DiGraph, config: ExactConfig, context: RunContext) -> DDSResult:
    return core_exact(
        graph, config, engine=context.engine, network_cache=context.network_cache
    )


register_method(MethodSpec(
    name="flow-exact",
    runner=_run_flow_exact,
    config_type=ExactConfig,
    is_exact=True,
    flow_backed=True,
    supports_warm_start=True,
    description="baseline exact: one binary search per candidate ratio",
    accepted_fields=frozenset({"tolerance", "node_limit", "flow"}),
))
register_method(MethodSpec(
    name="dc-exact",
    runner=_run_dc_exact,
    config_type=ExactConfig,
    is_exact=True,
    flow_backed=True,
    supports_warm_start=True,
    description="exact divide-and-conquer over the |S|/|T| ratio interval",
    accepted_fields=frozenset({"tolerance", "leaf_ratio_count", "seed_with_core", "flow"}),
))
register_method(MethodSpec(
    name="core-exact",
    runner=_run_core_exact,
    config_type=ExactConfig,
    is_exact=True,
    flow_backed=True,
    supports_warm_start=True,
    description="divide-and-conquer with [x, y]-core pruning (paper headline)",
    accepted_fields=frozenset({"tolerance", "leaf_ratio_count", "flow"}),
))
register_method(MethodSpec(
    name="core-approx",
    runner=lambda graph, config, context: core_approx(graph, config),
    config_type=ApproxConfig,
    is_exact=False,
    flow_backed=False,
    supports_warm_start=False,
    description="2-approximation from the maximum-product [x, y]-core",
    accepted_fields=frozenset(),
))
register_method(MethodSpec(
    name="inc-approx",
    runner=lambda graph, config, context: inc_approx(graph, config),
    config_type=ApproxConfig,
    is_exact=False,
    flow_backed=False,
    supports_warm_start=False,
    description="2-approximation via the full skyline decomposition",
    accepted_fields=frozenset(),
))
register_method(MethodSpec(
    name="peel-approx",
    runner=lambda graph, config, context: peel_approx(graph, config),
    config_type=ApproxConfig,
    is_exact=False,
    flow_backed=False,
    supports_warm_start=False,
    description="ratio-sweep two-sided peeling baseline",
    accepted_fields=frozenset({"epsilon", "ratios"}),
))
register_method(MethodSpec(
    name="brute-force",
    runner=lambda graph, config, context: brute_force_dds(graph, config),
    config_type=ExactConfig,
    is_exact=True,
    flow_backed=False,
    supports_warm_start=False,
    description="exhaustive ground-truth oracle for tiny graphs",
    accepted_fields=frozenset({"node_limit"}),
))
