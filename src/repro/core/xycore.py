"""[x, y]-cores: the directed analogue of k-cores introduced by the paper.

Definition
----------
Given a directed graph ``G`` and integers ``x, y >= 0``, the **[x, y]-core**
is the largest pair ``(S, T)`` of vertex subsets such that

* every ``u ∈ S`` has at least ``x`` out-neighbours inside ``T``, and
* every ``v ∈ T`` has at least ``y`` in-neighbours inside ``S``.

"Largest" is well defined because valid pairs are closed under component-wise
union, so a unique maximal pair exists; it is computed by iteratively peeling
violating vertices, and the peeling fixpoint is independent of removal order.

Key properties (proved in the docstrings of the corresponding functions and
checked by the property tests):

* **nestedness** — if ``x' >= x`` and ``y' >= y`` then the [x', y']-core is
  contained (side-wise) in the [x, y]-core;
* **density lower bound** — a non-empty [x, y]-core has directed density at
  least ``sqrt(x * y)``;
* **containment** — the densest pair ``(S*, T*)`` is contained in the
  ``[ceil(rho_opt / (2*sqrt(a*))), ceil(rho_opt * sqrt(a*) / 2)]``-core where
  ``a* = |S*|/|T*|`` (see :mod:`repro.core.bounds`).

These facts power both the 2-approximation (:mod:`repro.core.approx_core`)
and the core-based exact algorithm (:mod:`repro.core.exact_core`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.graph.digraph import DiGraph
from repro.utils.validation import require_non_negative_int


@dataclass(frozen=True)
class XYCore:
    """A concrete [x, y]-core: the orders ``(x, y)`` and the two vertex sides."""

    x: int
    y: int
    s_nodes: list[int]
    t_nodes: list[int]

    @property
    def is_empty(self) -> bool:
        """True when either side is empty (the core does not exist)."""
        return not self.s_nodes or not self.t_nodes

    @property
    def product(self) -> int:
        """``x * y`` — the quantity the 2-approximation maximises."""
        return self.x * self.y


def xy_core(
    graph: DiGraph,
    x: int,
    y: int,
    s_candidates: Sequence[int] | None = None,
    t_candidates: Sequence[int] | None = None,
) -> XYCore:
    """Compute the maximal [x, y]-core (optionally inside candidate sets).

    The candidate restriction computes the maximal pair *within*
    ``s_candidates × t_candidates``; with the default (all vertices) this is
    the [x, y]-core of the whole graph.

    Correctness of the peeling: any valid pair ``(S', T')`` inside the
    candidate sets survives every removal (by induction — a vertex is removed
    only when its degree into the *current* superset is too small, hence its
    degree into the subset is too small as well), so the fixpoint contains
    every valid pair; and the fixpoint itself is valid because no violating
    vertex remains.  Therefore the fixpoint is the unique maximal pair.

    Complexity: ``O(n + m)`` with the queue-based implementation below.
    """
    require_non_negative_int(x, "x")
    require_non_negative_int(y, "y")
    n = graph.num_nodes
    out_adj = graph.out_adj
    in_adj = graph.in_adj

    if s_candidates is None:
        in_s = [True] * n
    else:
        in_s = [False] * n
        for u in s_candidates:
            in_s[u] = True
    if t_candidates is None:
        in_t = [True] * n
    else:
        in_t = [False] * n
        for v in t_candidates:
            in_t[v] = True

    dout = [0] * n
    din = [0] * n
    for u in range(n):
        if in_s[u]:
            dout[u] = sum(1 for v in out_adj[u] if in_t[v])
    for v in range(n):
        if in_t[v]:
            din[v] = sum(1 for u in in_adj[v] if in_s[u])

    # Queue entries are (side, node): side 0 = remove from S, side 1 = remove from T.
    queue: deque[tuple[int, int]] = deque()
    for u in range(n):
        if in_s[u] and dout[u] < x:
            queue.append((0, u))
    for v in range(n):
        if in_t[v] and din[v] < y:
            queue.append((1, v))

    while queue:
        side, node = queue.popleft()
        if side == 0:
            if not in_s[node]:
                continue
            in_s[node] = False
            for v in out_adj[node]:
                if in_t[v]:
                    din[v] -= 1
                    if din[v] < y:
                        queue.append((1, v))
        else:
            if not in_t[node]:
                continue
            in_t[node] = False
            for u in in_adj[node]:
                if in_s[u]:
                    dout[u] -= 1
                    if dout[u] < x:
                        queue.append((0, u))

    s_nodes = [u for u in range(n) if in_s[u]]
    t_nodes = [v for v in range(n) if in_t[v]]
    if not s_nodes or not t_nodes:
        # With x, y >= 1 an empty side forces the other side empty as well;
        # report a canonical empty core either way.
        if x > 0 or y > 0:
            return XYCore(x=x, y=y, s_nodes=[], t_nodes=[])
    return XYCore(x=x, y=y, s_nodes=s_nodes, t_nodes=t_nodes)


def _y_decomposition(graph: DiGraph, x: int, base: XYCore) -> int:
    """Largest ``y`` with a non-empty [x, y]-core inside ``base`` (one peel pass).

    This is the directed analogue of the classic core-decomposition argument:
    repeatedly remove the T vertex with the smallest in-degree (cascading the
    removal of S vertices whose out-degree drops below ``x``).  Whenever a T
    vertex is removed with in-degree ``d``, every remaining T vertex has
    in-degree at least ``d`` and every remaining S vertex out-degree at least
    ``x``, so the surviving pair is an [x, d]-core; the answer is the maximum
    ``d`` observed.  Total cost ``O((n + m) log n)`` — independent of how
    large the answer is.
    """
    out_adj = graph.out_adj
    in_adj = graph.in_adj
    in_s = {u: True for u in base.s_nodes}
    in_t = {v: True for v in base.t_nodes}
    dout = {
        u: sum(1 for v in out_adj[u] if v in in_t) for u in base.s_nodes
    }
    din = {
        v: sum(1 for u in in_adj[v] if u in in_s) for v in base.t_nodes
    }

    heap = [(degree, v) for v, degree in din.items()]
    heapq.heapify(heap)
    best_y = 0

    def remove_from_s(u: int) -> None:
        in_s[u] = False
        for v in out_adj[u]:
            if in_t.get(v, False):
                din[v] -= 1
                heapq.heappush(heap, (din[v], v))

    while heap:
        degree, v = heapq.heappop(heap)
        if not in_t.get(v, False) or degree != din[v]:
            continue
        # v is the minimum-in-degree T vertex: the current pair is an
        # [x, degree]-core (possibly with degree < previous maxima).
        best_y = max(best_y, degree)
        in_t[v] = False
        # Cascade: S vertices losing this target may fall below x.
        pending = []
        for u in in_adj[v]:
            if in_s.get(u, False):
                dout[u] -= 1
                if dout[u] < x:
                    pending.append(u)
        while pending:
            u = pending.pop()
            if in_s.get(u, False):
                remove_from_s(u)
    return best_y


def max_y_for_x(
    graph: DiGraph,
    x: int,
    y_upper: int | None = None,
    s_candidates: Sequence[int] | None = None,
    t_candidates: Sequence[int] | None = None,
) -> tuple[int, XYCore | None]:
    """Largest ``y`` such that the [x, y]-core is non-empty (0 if none).

    The answer is found with a single decomposition pass over the [x, 1]-core
    (see :func:`_y_decomposition`); one further peel materialises the witness
    core.  ``y_upper`` (when known, e.g. from the previous ``x`` in a sweep,
    thanks to monotonicity) clips the reported value, and ``s_candidates`` /
    ``t_candidates`` may restrict the search to any superset of the sought
    core (e.g. the [x-1, 1]-core — valid by nestedness), which keeps the
    max-product sweep near-linear on large graphs.
    """
    require_non_negative_int(x, "x")
    if graph.num_edges == 0:
        return 0, None
    base = xy_core(graph, x, 1, s_candidates=s_candidates, t_candidates=t_candidates)
    if base.is_empty:
        return 0, None

    best_y = _y_decomposition(graph, x, base)
    if best_y == 0:
        return 0, None
    if y_upper is not None:
        best_y = min(best_y, y_upper)
    best_core = xy_core(graph, x, best_y, s_candidates=base.s_nodes, t_candidates=base.t_nodes)
    if best_core.is_empty:  # pragma: no cover - defensive, should be impossible
        return 0, None
    return best_y, best_core


def xy_core_skyline(graph: DiGraph) -> list[tuple[int, int]]:
    """The skyline ``[(x, y_max(x))]`` for ``x = 1, 2, ...`` until the core vanishes.

    ``y_max`` is non-increasing in ``x`` (nestedness), which the property
    tests verify.  This is the directed analogue of a full core decomposition
    and is reported in the dataset-statistics experiment (E1).
    """
    skyline: list[tuple[int, int]] = []
    y_cap: int | None = None
    base_s: list[int] | None = None
    base_t: list[int] | None = None
    x = 1
    while True:
        # The [x, 1]-core is contained in the [x-1, 1]-core, so each step only
        # ever peels inside the previous step's base core.
        base = xy_core(graph, x, 1, s_candidates=base_s, t_candidates=base_t)
        if base.is_empty:
            break
        base_s, base_t = base.s_nodes, base.t_nodes
        y_best, core = max_y_for_x(
            graph, x, y_upper=y_cap, s_candidates=base_s, t_candidates=base_t
        )
        if y_best == 0 or core is None:
            break
        skyline.append((x, y_best))
        y_cap = y_best
        x += 1
    return skyline


def max_xy_core(graph: DiGraph) -> XYCore:
    """The non-empty [x, y]-core maximising ``x * y`` (ties: larger ``x``).

    This is the object returned by the CoreApprox 2-approximation.  The sweep
    walks ``x`` upward, reusing three structural facts to stay near-linear in
    practice: the monotone cap ``y_max(x) <= y_max(x - 1)``, the containment
    of every step's cores in the previous [x-1, 1]-core (so peeling never
    touches the whole graph again after the first step), and the skip rule
    ``x * y_cap <= best_product`` which discards hopeless ``x`` values
    outright.
    """
    if graph.num_edges == 0:
        return XYCore(x=0, y=0, s_nodes=[], t_nodes=[])

    best_core = XYCore(x=0, y=0, s_nodes=[], t_nodes=[])
    best_product = 0
    y_cap: int | None = None
    base_s: list[int] | None = None
    base_t: list[int] | None = None
    max_x = max(graph.max_out_degree(), 1)

    for x in range(1, max_x + 1):
        base = xy_core(graph, x, 1, s_candidates=base_s, t_candidates=base_t)
        if base.is_empty:
            break
        base_s, base_t = base.s_nodes, base.t_nodes
        if y_cap is not None and x * y_cap <= best_product:
            continue
        y_best, core = max_y_for_x(
            graph, x, y_upper=y_cap, s_candidates=base_s, t_candidates=base_t
        )
        if y_best == 0 or core is None:
            break
        y_cap = y_best
        if x * y_best > best_product:
            best_product = x * y_best
            best_core = core
    return best_core
