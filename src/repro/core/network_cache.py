"""Bounded LRU cache of retunable decision networks.

PR 1 made each fixed-ratio search build **one** decision network and
re-parameterise it in place between binary-search guesses
(:meth:`~repro.core.flow_network.DecisionNetwork.retune`).  This module
extends the same idea *across* searches: networks are cached by
``(sub-problem state, ratio)`` so that

* the coarse and refine stages of a divide-and-conquer interior probe (same
  sub-problem, same probe ratio) share a single network within one run, and
* repeated queries against one :class:`~repro.session.DDSSession` (top-k
  rounds, coarse→refine probe sequences, re-tolerated exact runs) reuse
  networks built by earlier queries instead of rebuilding them.

Cached networks are stored **with the residual flow of their last solve**:
entries are retuned, never reset, on the way out, so a warm-start retune
(:meth:`DecisionNetwork.retune(..., warm_start=True)
<repro.core.flow_network.DecisionNetwork.retune>`) can hand the next search
the previous search's feasible flow as its starting point.  This is how
``FlowConfig.warm_start`` reaches across queries: within one search the
network carries flow from guess to guess, and via this cache it carries it
from search to search.

Correctness rests on two facts: a retuned network is observationally
identical to a freshly built one — warm-started or not, pinned by
``tests/test_core_retune.py`` and ``tests/test_warm_start.py`` — and the
cache key embeds :attr:`~repro.graph.digraph.DiGraph.state_token`, which
changes on every structural graph mutation, so a cached network can never
be served for a graph state it was not built from.

Stats-key glossary
------------------
This module is the **canonical definition** of the cache-level counters
reported by :meth:`NetworkCache.stats` (and surfaced through
:meth:`DDSSession.cache_stats() <repro.session.DDSSession.cache_stats>`);
the flow-engine counters — ``flow_calls``, ``networks_built``,
``networks_reused``, ``arcs_pushed``, ``warm_starts_used``,
``cold_starts``, ``warm_start_fallbacks`` — are defined once in
:mod:`repro.flow.engine`.

``network_cache_entries``
    Number of decision networks currently held (bounded by ``max_entries``).
``network_cache_hits``
    Lookups that returned a cached network (each corresponds to a
    ``networks_reused`` tick on the engine that ran the search).
``network_cache_misses``
    Lookups that found nothing — the search then builds a network
    (``networks_built``) and deposits it.
``network_cache_evictions``
    Entries dropped because the LRU cache was full.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.core.config import DEFAULT_NETWORK_CACHE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.flow_network import DecisionNetwork
    from repro.core.subproblem import STSubproblem


class NetworkCache:
    """LRU map ``(subproblem token, ratio) -> DecisionNetwork``.

    A ``max_entries`` of 0 disables the cache (both lookups and inserts
    become no-ops), which keeps the solvers' control flow uniform.
    """

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = DEFAULT_NETWORK_CACHE_SIZE) -> None:
        self.max_entries = max(int(max_entries), 0)
        self._entries: OrderedDict[tuple[Any, float], "DecisionNetwork"] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(subproblem: "STSubproblem", ratio: float) -> tuple[Any, float]:
        return (subproblem.cache_token(), float(ratio))

    def get(self, subproblem: "STSubproblem", ratio: float) -> "DecisionNetwork | None":
        """The cached network for ``(subproblem, ratio)``, or ``None``.

        A hit marks the entry most-recently-used.  The returned network still
        carries the residual state of its last solve; callers must
        :meth:`~repro.core.flow_network.DecisionNetwork.retune` before use
        (the fixed-ratio search loop always does) — with ``warm_start=True``
        the retune turns that leftover state into the next solve's head
        start instead of discarding it.
        """
        if self.max_entries == 0:
            return None
        key = self._key(subproblem, ratio)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, subproblem: "STSubproblem", ratio: float, network: "DecisionNetwork") -> None:
        """Insert (or refresh) a network, evicting the LRU entry when full."""
        if self.max_entries == 0:
            return
        key = self._key(subproblem, ratio)
        self._entries[key] = network
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached network (counters are kept)."""
        self._entries.clear()

    def entries(self) -> list[tuple[Any, float, "DecisionNetwork"]]:
        """Snapshot of every entry as ``(token, ratio, network)``, LRU order.

        Non-destructive and counter-neutral (no hit/miss ticks).  The
        networks are the live cached objects, not copies — callers that
        intend to mutate them must :meth:`~repro.core.flow_network.DecisionNetwork.clone`
        first (the top-k round-seeding path does).
        """
        return [(key[0], key[1], network) for key, network in self._entries.items()]

    def take_all(self) -> list[tuple[Any, float, "DecisionNetwork"]]:
        """Remove and return every entry as ``(token, ratio, network)`` triples.

        LRU order (least recent first) is preserved so a migration that
        re-deposits surviving entries via :meth:`put_token` keeps the same
        eviction order.  This is the incremental layer's hook: after a graph
        delta every key's ``state_token`` component is stale, so the patcher
        drains the cache, patches the networks it can, and re-files them
        under the post-delta token.
        """
        drained = [(key[0], key[1], network) for key, network in self._entries.items()]
        self._entries.clear()
        return drained

    def put_token(self, token: Any, ratio: float, network: "DecisionNetwork") -> None:
        """Insert under an explicit ``(token, ratio)`` key (migration path).

        Identical to :meth:`put` but keyed directly — used when re-filing
        patched networks under a new sub-problem token without holding the
        sub-problem itself.
        """
        if self.max_entries == 0:
            return
        key = (token, float(ratio))
        self._entries[key] = network
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counters for instrumentation and the session's ``cache_stats()``."""
        return {
            "network_cache_entries": len(self._entries),
            "network_cache_hits": self.hits,
            "network_cache_misses": self.misses,
            "network_cache_evictions": self.evictions,
        }
