"""Legacy one-shot entry point: :func:`densest_subgraph` (deprecation shim).

The public API is session-oriented since the :class:`repro.session.DDSSession`
redesign: construct one session per graph and query it repeatedly —
``DDSSession(graph).densest_subgraph(...)`` — so that derived state (degree
arrays, core decompositions, decision networks, whole results) is cached
across queries.  This module keeps the historical one-shot function working
by building a throwaway session per call; results are identical to the
session path because it *is* the session path.

New code should use :class:`~repro.session.DDSSession` directly; method
introspection moved to :mod:`repro.core.method_registry`.
"""

from __future__ import annotations

import warnings

from repro.core.method_registry import available_methods  # re-export  # noqa: F401
from repro.core.results import DDSResult
from repro.graph.digraph import DiGraph

#: Above this node count ``method="auto"`` switches from exact to approximate.
AUTO_EXACT_NODE_LIMIT = 400


def densest_subgraph(graph: DiGraph, method: str = "auto", **kwargs) -> DDSResult:
    """Find the (exact or approximate) directed densest subgraph of ``graph``.

    .. deprecated::
        Use ``repro.session.DDSSession(graph).densest_subgraph(...)`` — one
        session per graph amortises preprocessing across queries.  This shim
        constructs a throwaway session per call and returns the identical
        result.

    Parameters
    ----------
    graph:
        Input :class:`~repro.graph.DiGraph` with at least one edge.
    method:
        One of ``"auto"``, ``"core-exact"``, ``"dc-exact"``, ``"flow-exact"``,
        ``"core-approx"``, ``"inc-approx"``, ``"peel-approx"``,
        ``"brute-force"``.  ``"auto"`` uses CoreExact when the graph has at
        most :data:`AUTO_EXACT_NODE_LIMIT` nodes and CoreApprox otherwise.
    **kwargs:
        Either ``config=`` (a typed :class:`~repro.core.config.ExactConfig` /
        :class:`~repro.core.config.ApproxConfig`) or legacy per-field
        overrides (``epsilon=`` for ``peel-approx``, ``tolerance=`` for the
        exact solvers, ``flow_solver=`` for the flow-backed exact methods;
        the latter is dropped — recorded as ``flow_solver_ignored`` in the
        stats and reported via :class:`UserWarning` — when the chosen method
        performs no min-cuts).  Unknown or invalid values raise
        :class:`~repro.exceptions.ConfigError`.

    Returns
    -------
    DDSResult
        The pair ``(S, T)``, its density, and per-algorithm statistics.

    Examples
    --------
    >>> from repro.graph import complete_bipartite_digraph
    >>> result = densest_subgraph(complete_bipartite_digraph(2, 3), method="core-exact")
    >>> round(result.density, 4)
    2.4495
    """
    from repro.session import DDSSession

    warnings.warn(
        "densest_subgraph() is deprecated; use repro.session.DDSSession for "
        "cached multi-query access",
        DeprecationWarning,
        stacklevel=2,
    )
    return DDSSession(graph).densest_subgraph(method, **kwargs)
