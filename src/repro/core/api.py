"""Top-level entry point: :func:`densest_subgraph`.

This is the one function most downstream users need.  It dispatches to the
individual algorithms by name and picks a sensible default automatically:
exact CoreExact on small graphs, CoreApprox on large ones.
"""

from __future__ import annotations

from typing import Callable

from repro.core.approx_core import core_approx, inc_approx
from repro.core.approx_peel import peel_approx
from repro.core.bruteforce import brute_force_dds
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph

#: Above this node count ``method="auto"`` switches from exact to approximate.
AUTO_EXACT_NODE_LIMIT = 400

_METHODS: dict[str, Callable[..., DDSResult]] = {
    "flow-exact": flow_exact,
    "dc-exact": dc_exact,
    "core-exact": core_exact,
    "core-approx": core_approx,
    "inc-approx": inc_approx,
    "peel-approx": peel_approx,
    "brute-force": brute_force_dds,
}

#: Methods that run min-cuts and therefore accept ``flow_solver=``.
FLOW_BACKED_METHODS = frozenset({"flow-exact", "dc-exact", "core-exact"})


def available_methods() -> list[str]:
    """Names accepted by :func:`densest_subgraph` (besides ``"auto"``)."""
    return sorted(_METHODS)


def densest_subgraph(graph: DiGraph, method: str = "auto", **kwargs) -> DDSResult:
    """Find the (exact or approximate) directed densest subgraph of ``graph``.

    Parameters
    ----------
    graph:
        Input :class:`~repro.graph.DiGraph` with at least one edge.
    method:
        One of ``"auto"``, ``"core-exact"``, ``"dc-exact"``, ``"flow-exact"``,
        ``"core-approx"``, ``"inc-approx"``, ``"peel-approx"``,
        ``"brute-force"``.  ``"auto"`` uses CoreExact when the graph has at
        most :data:`AUTO_EXACT_NODE_LIMIT` nodes and CoreApprox otherwise.
    **kwargs:
        Forwarded to the chosen algorithm (e.g. ``epsilon=`` for
        ``peel-approx``, ``tolerance=`` for the exact solvers, or
        ``flow_solver=`` to pick the max-flow backend of the flow-backed
        exact methods; the latter is dropped — and recorded as
        ``flow_solver_ignored`` in the stats — when the chosen method
        performs no min-cuts).

    Returns
    -------
    DDSResult
        The pair ``(S, T)``, its density, and per-algorithm statistics.

    Examples
    --------
    >>> from repro.graph import complete_bipartite_digraph
    >>> result = densest_subgraph(complete_bipartite_digraph(2, 3), method="core-exact")
    >>> round(result.density, 4)
    2.4495
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("densest_subgraph requires a graph with at least one edge")
    if method == "auto":
        chosen = "core-exact" if graph.num_nodes <= AUTO_EXACT_NODE_LIMIT else "core-approx"
    else:
        chosen = method
    solver = _METHODS.get(chosen)
    if solver is None:
        raise AlgorithmError(
            f"unknown method {method!r}; available: {', '.join(available_methods())} or 'auto'"
        )
    ignored_flow_solver = None
    if chosen not in FLOW_BACKED_METHODS and "flow_solver" in kwargs:
        ignored_flow_solver = kwargs.pop("flow_solver")
    result = solver(graph, **kwargs)
    if method == "auto":
        result.stats["auto_selected"] = chosen
    if ignored_flow_solver is not None:
        result.stats["flow_solver_ignored"] = ignored_flow_solver
    return result
