"""Peeling-based approximation algorithms (the baseline family).

``peel_fixed_ratio`` is the two-sided greedy peel of Khuller–Saha type for a
fixed ratio ``a``: repeatedly remove either the S-vertex with the smallest
out-degree into ``T`` or the T-vertex with the smallest in-degree from ``S``,
choosing the side by the rule ``remove from S iff a * min_dout <= min_din``,
and return the densest intermediate pair.

**Guarantee.**  Let ``(S*, T*)`` be optimal with ``a* = |S*|/|T*|`` and
consider the peel run with ``a``.  At the first moment a vertex of ``S*``
(from the S side) or of ``T*`` (from the T side) is removed, the current sets
satisfy ``S ⊇ S*`` and ``T ⊇ T*``.  The containment lemma
(:mod:`repro.core.bounds`) gives ``d_{S*→T*}(u) >= rho_opt/(2*sqrt(a*))`` for
``u ∈ S*`` and ``d_{S*→T*}(v) >= rho_opt*sqrt(a*)/2`` for ``v ∈ T*``.  A case
analysis on which side is removed, combined with the selection rule, shows
that at that moment

    min_dout * min_din >= rho_opt^2 / (4 * max(a*/a, a/a*)),

and since ``rho(S, T) >= sqrt(min_dout * min_din)`` always (each S vertex
contributes at least ``min_dout`` edges and each T vertex at least
``min_din``), the densest intermediate pair has density at least
``rho_opt / (2 * sqrt(max(a*/a, a/a*)))``.  With ``a = a*`` this is the
classic 2-approximation; sweeping a geometric ``(1+eps)`` grid over
``[1/n, n]`` (``peel_approx``) guarantees ``2*sqrt(1+eps)`` overall.
"""

from __future__ import annotations

import heapq
import math

from repro.core.config import ApproxConfig
from repro.core.density import directed_density_from_indices
from repro.core.ratio import geometric_ratio_grid
from repro.core.results import DDSResult
from repro.core.subproblem import STSubproblem
from repro.exceptions import EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.utils.validation import require_positive


def peel_fixed_ratio(
    subproblem: STSubproblem, ratio: float
) -> tuple[list[int], list[int], float]:
    """Two-sided peel for a fixed ratio; returns ``(S, T, density)`` (graph indices).

    Runs in ``O((n + m) log n)`` using lazy min-heaps.  Returns empty lists
    and density 0.0 on an empty sub-problem.
    """
    require_positive(ratio, "ratio")
    if subproblem.is_empty:
        return [], [], 0.0

    graph = subproblem.graph
    out_adj = graph.out_adj
    in_adj = graph.in_adj

    in_s: dict[int, bool] = {u: True for u in subproblem.s_candidates}
    in_t: dict[int, bool] = {v: True for v in subproblem.t_candidates}
    dout = subproblem.out_degrees()
    din = subproblem.in_degrees()
    edge_count = subproblem.num_edges
    s_size = len(in_s)
    t_size = len(in_t)

    s_heap = [(degree, u) for u, degree in dout.items()]
    t_heap = [(degree, v) for v, degree in din.items()]
    heapq.heapify(s_heap)
    heapq.heapify(t_heap)

    # Record the removal sequence so the best intermediate pair can be
    # reconstructed without copying S and T at every step.
    removals: list[tuple[str, int]] = []
    best_density = edge_count / math.sqrt(s_size * t_size)
    best_step = 0

    def pop_current(heap: list[tuple[int, int]], member: dict[int, bool], degree: dict[int, int]):
        """Peek the non-stale minimum of a lazy heap (or None if exhausted)."""
        while heap:
            key, node = heap[0]
            if not member.get(node, False) or key != degree[node]:
                heapq.heappop(heap)
                continue
            return key, node
        return None

    while edge_count > 0 and s_size > 0 and t_size > 0:
        s_entry = pop_current(s_heap, in_s, dout)
        t_entry = pop_current(t_heap, in_t, din)
        if s_entry is None or t_entry is None:
            break
        s_degree, s_node = s_entry
        t_degree, t_node = t_entry

        if ratio * s_degree <= t_degree:
            # Remove the weakest S vertex.
            in_s[s_node] = False
            s_size -= 1
            removals.append(("S", s_node))
            for v in out_adj[s_node]:
                if in_t.get(v, False):
                    din[v] -= 1
                    edge_count -= 1
                    heapq.heappush(t_heap, (din[v], v))
        else:
            # Remove the weakest T vertex.
            in_t[t_node] = False
            t_size -= 1
            removals.append(("T", t_node))
            for u in in_adj[t_node]:
                if in_s.get(u, False):
                    dout[u] -= 1
                    edge_count -= 1
                    heapq.heappush(s_heap, (dout[u], u))

        if s_size > 0 and t_size > 0:
            density = edge_count / math.sqrt(s_size * t_size)
            if density > best_density:
                best_density = density
                best_step = len(removals)

    # Reconstruct the best intermediate pair by replaying the removal prefix.
    best_s = set(subproblem.s_candidates)
    best_t = set(subproblem.t_candidates)
    for side, node in removals[:best_step]:
        if side == "S":
            best_s.discard(node)
        else:
            best_t.discard(node)
    return sorted(best_s), sorted(best_t), best_density


def peel_approx(
    graph: DiGraph,
    config: ApproxConfig | None = None,
    *,
    epsilon: float | None = None,
    ratios: list[float] | None = None,
) -> DDSResult:
    """``PeelApprox``: sweep a geometric ratio grid, peel each, keep the best.

    Parameters
    ----------
    graph:
        Input digraph with at least one edge.
    config:
        Normalized :class:`~repro.core.config.ApproxConfig`: ``epsilon`` is
        the multiplicative grid step (guarantee ``2*sqrt(1+epsilon)``) and
        ``ratios`` an optional explicit grid override (used by ablations).
    epsilon / ratios:
        Legacy per-field overrides resolved through ``config``.
    """
    cfg = ApproxConfig.resolve(config, epsilon=epsilon, ratios=ratios)
    if graph.num_edges == 0:
        raise EmptyGraphError("peel_approx requires a graph with at least one edge")
    epsilon = cfg.epsilon  # already validated > 0 by ApproxConfig

    subproblem = STSubproblem.from_graph(graph)
    grid: list[float] = (
        list(cfg.ratios) if cfg.ratios is not None else geometric_ratio_grid(graph.num_nodes, epsilon)
    )

    best_s: list[int] = []
    best_t: list[int] = []
    best_density = -1.0
    for ratio in grid:
        s_nodes, t_nodes, density = peel_fixed_ratio(subproblem, ratio)
        if density > best_density and s_nodes and t_nodes:
            best_density = density
            best_s, best_t = s_nodes, t_nodes

    density = directed_density_from_indices(graph, best_s, best_t)
    return DDSResult(
        s_nodes=graph.labels_of(best_s),
        t_nodes=graph.labels_of(best_t),
        density=density,
        edge_count=graph.count_edges_between(best_s, best_t),
        method="peel-approx",
        is_exact=False,
        approximation_ratio=2.0 * math.sqrt(1.0 + epsilon),
        stats={"ratios_examined": len(grid), "epsilon": epsilon},
    )
