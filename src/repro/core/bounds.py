"""Density bounds and DDS-containment facts derived from [x, y]-cores.

The two facts below are the engine of both the approximation guarantee and
the core-based pruning of the exact algorithm.

**Lower bound.**  A non-empty [x, y]-core ``(S, T)`` satisfies
``|E(S,T)| >= x*|S|`` (every S vertex contributes ``>= x`` edges) and
``|E(S,T)| >= y*|T|``; multiplying, ``|E|^2 >= x*y*|S|*|T|``, hence
``rho(S,T) >= sqrt(x*y)``.  Consequently ``rho_opt >= sqrt(max{x*y})``.

**Containment / upper bound.**  Let ``(S*, T*)`` be optimal with
``a* = |S*|/|T*|``.  Removing ``u ∈ S*`` cannot increase the density, so
``|E| - d(u) <= rho_opt * sqrt((|S*|-1)*|T*|)``, i.e.

    d(u) >= rho_opt * sqrt(|T*|) * (sqrt(|S*|) - sqrt(|S*|-1))
          = rho_opt * sqrt(|T*|) / (sqrt(|S*|) + sqrt(|S*|-1))
          >= rho_opt / (2*sqrt(a*)),

and symmetrically every ``v ∈ T*`` has in-degree ``>= rho_opt*sqrt(a*)/2``.
Since these degrees are integers, ``(S*, T*)`` is contained in the
``[ceil(rho_opt/(2*sqrt(a*))), ceil(rho_opt*sqrt(a*)/2)]``-core.  That core is
therefore non-empty and has product ``>= rho_opt^2/4``, giving the upper
bound ``rho_opt <= 2*sqrt(max{x*y})`` and the CoreApprox guarantee
``sqrt(max{x*y}) >= rho_opt/2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.density import directed_density_from_indices
from repro.core.xycore import XYCore, max_xy_core, xy_core
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class CoreBounds:
    """Bounds on ``rho_opt`` derived from the maximum-product [x, y]-core."""

    lower: float
    upper: float
    core: XYCore
    core_density: float

    @property
    def is_trivial(self) -> bool:
        """True when the graph had no edges and the bounds carry no information."""
        return self.core.is_empty


def core_based_bounds(graph: DiGraph) -> CoreBounds:
    """Compute ``sqrt(max xy) <= rho_opt <= 2*sqrt(max xy)`` plus the witness core.

    The returned ``lower`` is actually ``max(sqrt(x*y), rho(core))`` — the
    core's true density is already available and is never worse than the
    analytic bound.
    """
    core = max_xy_core(graph)
    if core.is_empty:
        return CoreBounds(lower=0.0, upper=0.0, core=core, core_density=0.0)
    analytic_lower = math.sqrt(core.product)
    density = directed_density_from_indices(graph, core.s_nodes, core.t_nodes)
    return CoreBounds(
        lower=max(analytic_lower, density),
        upper=2.0 * analytic_lower,
        core=core,
        core_density=density,
    )


def containing_core_orders(
    density_lower_bound: float, ratio_low: float, ratio_high: float
) -> tuple[int, int]:
    """Orders ``(x, y)`` of a core guaranteed to contain any optimal pair that

    (a) has density at least ``density_lower_bound`` and
    (b) has ratio ``|S|/|T|`` inside ``[ratio_low, ratio_high]``.

    From the containment lemma with ``rho_opt >= density_lower_bound`` and
    ``a* ∈ [ratio_low, ratio_high]``:

        min out-degree >= rho_opt/(2*sqrt(a*)) >= density_lower_bound/(2*sqrt(ratio_high))
        min in-degree  >= rho_opt*sqrt(a*)/2   >= density_lower_bound*sqrt(ratio_low)/2

    and integrality upgrades the real thresholds to their ceilings.
    """
    if ratio_low <= 0 or ratio_high <= 0 or ratio_low > ratio_high:
        raise ValueError(f"invalid ratio interval [{ratio_low}, {ratio_high}]")
    if density_lower_bound < 0:
        raise ValueError("density_lower_bound must be >= 0")
    x_real = density_lower_bound / (2.0 * math.sqrt(ratio_high))
    y_real = density_lower_bound * math.sqrt(ratio_low) / 2.0
    # The 1e-12 slack keeps float noise from bumping a threshold to the next
    # integer, which would (unsoundly) tighten the core.
    x = max(int(math.ceil(x_real - 1e-12)), 0)
    y = max(int(math.ceil(y_real - 1e-12)), 0)
    return x, y


def containing_core(
    graph: DiGraph,
    density_lower_bound: float,
    ratio_low: float,
    ratio_high: float,
) -> XYCore:
    """The [x, y]-core guaranteed to contain the DDS under the stated conditions.

    Used by CoreExact to shrink each flow network: if the true optimum beats
    ``density_lower_bound`` and its ratio lies in ``[ratio_low, ratio_high]``,
    then it survives inside this core, so searching only the core is sound.
    """
    x, y = containing_core_orders(density_lower_bound, ratio_low, ratio_high)
    if x == 0 and y == 0:
        return XYCore(
            x=0,
            y=0,
            s_nodes=list(range(graph.num_nodes)),
            t_nodes=list(range(graph.num_nodes)),
        )
    return xy_core(graph, x, y)
