"""Independent verification of DDS results.

Downstream users (and this repository's own tests and benchmarks) often want
a cheap, self-contained check that a :class:`~repro.core.results.DDSResult`
is internally consistent and at least *locally* optimal, without re-running
an exact solver.  This module provides:

* :func:`check_result` — recompute the density/edge count of the reported
  pair and compare with the recorded values;
* :func:`is_locally_maximal` — verify that no single-vertex addition or
  removal (on either side) increases the density, a necessary condition for
  global optimality that catches most implementation mistakes;
* :func:`certify_against_bounds` — check the result against the analytic
  [x, y]-core bounds: an *exact* result must land inside
  ``[sqrt(max xy), 2*sqrt(max xy)]`` and a 2-approximation must reach at
  least half of the core upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bounds import core_based_bounds
from repro.core.density import directed_density
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError
from repro.graph.digraph import DiGraph

#: Densities differing by less than this are treated as equal by the checks.
VERIFY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying a result against its graph."""

    consistent: bool
    locally_maximal: bool
    within_core_bounds: bool
    recomputed_density: float
    messages: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when every executed check passed."""
        return self.consistent and self.locally_maximal and self.within_core_bounds


def check_result(graph: DiGraph, result: DDSResult) -> tuple[bool, float, list[str]]:
    """Recompute the reported pair's density and compare with the result fields."""
    messages: list[str] = []
    if not result.s_nodes or not result.t_nodes:
        return False, 0.0, ["result has an empty side"]
    for label in list(result.s_nodes) + list(result.t_nodes):
        if not graph.has_node(label):
            return False, 0.0, [f"node {label!r} is not in the graph"]
    density = directed_density(graph, result.s_nodes, result.t_nodes)
    if abs(density - result.density) > VERIFY_TOLERANCE * max(1.0, density):
        messages.append(
            f"reported density {result.density:.9f} does not match recomputed {density:.9f}"
        )
    edges = graph.count_edges_between(
        graph.indices_of(result.s_nodes), graph.indices_of(result.t_nodes)
    )
    if edges != result.edge_count:
        messages.append(f"reported edge count {result.edge_count} != recomputed {edges}")
    return not messages, density, messages


def is_locally_maximal(graph: DiGraph, result: DDSResult) -> tuple[bool, list[str]]:
    """Check that no single-vertex move improves the density of the reported pair.

    Four move families are tested: remove a vertex from S, remove one from T,
    add any outside vertex to S, add any outside vertex to T.  Every *globally*
    optimal pair passes all four, so a failure is a certificate that the
    result is not optimal (useful for spotting bugs); passing is necessary
    but not sufficient.
    """
    messages: list[str] = []
    s_set = list(dict.fromkeys(result.s_nodes))
    t_set = list(dict.fromkeys(result.t_nodes))
    base = directed_density(graph, s_set, t_set)

    if len(s_set) > 1:
        for label in s_set:
            candidate = [other for other in s_set if other != label]
            if directed_density(graph, candidate, t_set) > base + VERIFY_TOLERANCE:
                messages.append(f"removing {label!r} from S increases the density")
    if len(t_set) > 1:
        for label in t_set:
            candidate = [other for other in t_set if other != label]
            if directed_density(graph, s_set, candidate) > base + VERIFY_TOLERANCE:
                messages.append(f"removing {label!r} from T increases the density")

    s_lookup = set(s_set)
    t_lookup = set(t_set)
    for label in graph.nodes():
        if label not in s_lookup:
            if directed_density(graph, s_set + [label], t_set) > base + VERIFY_TOLERANCE:
                messages.append(f"adding {label!r} to S increases the density")
        if label not in t_lookup:
            if directed_density(graph, s_set, t_set + [label]) > base + VERIFY_TOLERANCE:
                messages.append(f"adding {label!r} to T increases the density")
    return not messages, messages


def certify_against_bounds(graph: DiGraph, result: DDSResult) -> tuple[bool, list[str]]:
    """Check the result against the analytic [x, y]-core density bounds."""
    messages: list[str] = []
    bounds = core_based_bounds(graph)
    if bounds.is_trivial:
        return True, []
    if result.is_exact:
        if result.density + VERIFY_TOLERANCE < bounds.lower:
            messages.append(
                f"exact result {result.density:.6f} is below the core lower bound {bounds.lower:.6f}"
            )
        if result.density > bounds.upper + VERIFY_TOLERANCE:
            messages.append(
                f"exact result {result.density:.6f} exceeds the core upper bound {bounds.upper:.6f}"
            )
    else:
        guarantee = max(result.approximation_ratio, 1.0)
        # rho_opt >= sqrt(max xy), so an alpha-approximation must reach at
        # least sqrt(max xy) / alpha.
        floor = math.sqrt(bounds.core.product) / guarantee
        if result.density + VERIFY_TOLERANCE < floor:
            messages.append(
                f"approximate result {result.density:.6f} violates its {guarantee:.2f}-guarantee "
                f"floor {floor:.6f}"
            )
    return not messages, messages


def verify_result(
    graph: DiGraph, result: DDSResult, check_local_maximality: bool = True
) -> VerificationReport:
    """Run all verification checks and collect a :class:`VerificationReport`.

    ``check_local_maximality`` costs ``O(n * (|S| + |T|))`` density
    evaluations and can be disabled for very large graphs.
    """
    if graph.num_edges == 0:
        raise AlgorithmError("verify_result requires a graph with at least one edge")
    consistent, density, messages = check_result(graph, result)
    if check_local_maximality and consistent and result.is_exact:
        locally_maximal, local_messages = is_locally_maximal(graph, result)
        messages = messages + local_messages
    else:
        locally_maximal = True
    within_bounds, bound_messages = certify_against_bounds(graph, result)
    messages = messages + bound_messages
    return VerificationReport(
        consistent=consistent,
        locally_maximal=locally_maximal,
        within_core_bounds=within_bounds,
        recomputed_density=density,
        messages=tuple(messages),
    )
