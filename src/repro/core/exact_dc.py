"""Divide-and-conquer exact DDS solvers (``DCExact`` and the core of ``CoreExact``).

Instead of examining all ``O(n^2)`` candidate ratios ``|S|/|T| = i/j``, the
driver recursively subdivides the ratio interval ``[1/n, n]``.  Processing an
interval ``[lo, hi]`` probes the surrogate objective at the geometric
midpoint ``c = sqrt(lo*hi)`` and then removes from further consideration a
*skip region* around ``c`` that provably cannot contain the ratio of any pair
better than the incumbent:

* **window skip** — writing every pair's surrogate at ``c`` as
  ``rho(P) / cosh(delta_P)`` with ``delta_P = ln(r_P / c) / 2``, any ratio
  ``r`` with ``cosh(|ln(r/c)|/2) <= incumbent / upper(val(c))`` is covered:
  a pair at such a ratio has ``rho <= val(c) * cosh <= incumbent``.
* **ratio-skipping lemma** — let ``P'`` be the pair extracted at the highest
  successful guess (a near-maximiser of the surrogate, within
  ``eps = upper - surrogate(P')``) and ``c' = |S'|/|T'|`` its ratio.  For any
  pair ``Q`` whose ratio lies strictly between ``c`` and ``c'``:
  ``rho(Q) = surrogate_c(Q) * cosh(delta_Q) <= (surrogate_c(P') + eps) *
  cosh(delta_{P'}) = rho(P') + eps * cosh(delta_{P'})``, because
  ``|delta_Q| <= |delta_{P'}|``.  Whenever ``eps * cosh(delta_{P'})`` is below
  the minimum gap between distinct achievable densities, every such ``Q`` is
  no better than ``P'`` — whose true density has already been folded into the
  incumbent — so the whole open interval ``(c, c')`` can be skipped.

Whatever is not covered by the skip region is pushed back as (at most two)
child intervals together with a tightened conditional upper bound
``min(parent_upper, f(lo,hi) * upper(val(c)))`` which is valid whenever the
optimal ratio lies inside the child.  Intervals containing at most a handful
of distinct candidate ratios are leaves: each not-yet-examined ratio gets one
full-precision fixed-ratio search.

``CoreExact`` is the same driver with ``use_core_restriction`` switched on:
each interval's search space is shrunk to the [x, y]-core that must contain
any optimum beating the incumbent whose ratio falls in that interval
(:func:`repro.core.bounds.containing_core`).  All skip arguments remain sound
under the restriction because whenever they could cut off the true optimum,
the containment lemma places that optimum inside the restricted core, which
forces the incumbent to already be optimal (the detailed argument is spelled
out in DESIGN.md and exercised by the brute-force comparison property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.core.approx_peel import peel_fixed_ratio
from repro.core.bounds import containing_core, core_based_bounds
from repro.core.config import LEAF_RATIO_COUNT, ExactConfig
from repro.core.density import (
    directed_density_from_indices,
    exactness_tolerance,
    global_density_upper_bound,
    interval_relaxation_factor,
)
from repro.core.fixed_ratio import (
    maximize_fixed_ratio,
    maximize_fixed_ratio_batch,
    partial_outcomes,
)
from repro.core.flow_network import decision_network_arc_count
from repro.core.network_cache import NetworkCache
from repro.core.ratio import (
    candidate_ratios_in_interval,
    count_candidate_ratios_in_interval,
)
from repro.core.results import DDSResult
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError, DeadlineExceeded, EmptyGraphError
from repro.flow.engine import FlowEngine, zero_snapshot
from repro.flow.registry import DEFAULT_SOLVER
from repro.graph.digraph import DiGraph
from repro.runtime import AnytimeResult

__all__ = ["LEAF_RATIO_COUNT", "dc_exact"]

#: Soft precision (relative to the incumbent) used by interior probes; probes
#: that turn out to beat the incumbent are automatically refined further.
PROBE_COARSE_FRACTION = 0.01


@dataclass
class _SearchState:
    """Mutable incumbent + instrumentation shared across the recursion."""

    engine: FlowEngine = field(default_factory=FlowEngine)
    network_cache: NetworkCache = field(default_factory=NetworkCache)
    engine_snapshot: tuple[int, ...] = field(default_factory=zero_snapshot)
    best_s: list[int] = field(default_factory=list)
    best_t: list[int] = field(default_factory=list)
    best_density: float = 0.0
    ratios_examined: int = 0
    fixed_ratio_searches: int = 0
    intervals_processed: int = 0
    intervals_pruned: int = 0
    leaf_ratios: int = 0
    examined_exact_ratios: set[Fraction] = field(default_factory=set)
    network_nodes: list[int] = field(default_factory=list)
    network_arcs: list[int] = field(default_factory=list)

    def offer(self, s_nodes: list[int], t_nodes: list[int], density: float) -> None:
        """Adopt ``(S, T)`` as the incumbent if it is strictly denser."""
        if density > self.best_density and s_nodes and t_nodes:
            self.best_density = density
            self.best_s = list(s_nodes)
            self.best_t = list(t_nodes)

    def absorb_outcome(self, outcome: Any) -> None:
        """Merge instrumentation and incumbent information from a probe."""
        if outcome.flow_calls:
            self.fixed_ratio_searches += 1
        self.network_nodes.extend(outcome.network_nodes)
        self.network_arcs.extend(outcome.network_arcs)
        if outcome.found_pair:
            self.offer(outcome.best_s, outcome.best_t, outcome.best_density)

    def stats(self) -> dict[str, Any]:
        """Instrumentation dictionary stored on the final result."""
        stats = {
            "ratios_examined": self.ratios_examined,
            "fixed_ratio_searches": self.fixed_ratio_searches,
            "intervals_processed": self.intervals_processed,
            "intervals_pruned": self.intervals_pruned,
            "leaf_ratios": self.leaf_ratios,
            "network_nodes": self.network_nodes,
            "network_arcs": self.network_arcs,
        }
        # Delta against the entry snapshot: the engine may be session-owned
        # and already carry counts from earlier queries.
        stats.update(self.engine.stats_since(self.engine_snapshot))
        return stats


def _skip_region(
    probe_ratio: float,
    value_upper: float,
    incumbent: float,
    last_s: list[int],
    last_t: list[int],
    last_surrogate: float,
    density_gap: float,
) -> tuple[float, float]:
    """The ratio window around ``probe_ratio`` that cannot beat the incumbent.

    Returns ``(left_edge, right_edge)``: every candidate ratio strictly inside
    the open-ended region between the edges is provably unable to host a pair
    denser than the incumbent (window skip and/or ratio-skipping lemma — see
    the module docstring).  When nothing can be skipped both edges equal
    ``probe_ratio``.
    """
    left_edge = probe_ratio
    right_edge = probe_ratio
    if value_upper > 0 and incumbent >= value_upper:
        # Window skip: r with cosh(|ln(r / c)| / 2) <= incumbent / value_upper.
        half_width = 2.0 * math.acosh(incumbent / value_upper)
        left_edge = probe_ratio * math.exp(-half_width)
        right_edge = probe_ratio * math.exp(half_width)
    if last_s and last_t and last_surrogate > 0:
        maximiser_ratio = len(last_s) / len(last_t)
        epsilon = max(value_upper - last_surrogate, 0.0)
        delta = 0.5 * abs(math.log(maximiser_ratio / probe_ratio))
        if epsilon * math.cosh(delta) < density_gap:
            # Ratio-skipping lemma: the open interval between the probe ratio
            # and the maximiser's ratio cannot beat the incumbent.
            if maximiser_ratio > probe_ratio:
                right_edge = max(right_edge, maximiser_ratio)
            else:
                left_edge = min(left_edge, maximiser_ratio)
    return left_edge, right_edge


def _anytime_partial(
    graph: DiGraph,
    method: str,
    state: _SearchState,
    slack: float,
    global_upper: float,
    open_uppers: list[float],
    engine: FlowEngine,
) -> AnytimeResult:
    """Assemble the certified anytime result at a deadline cancellation.

    The incumbent is always a feasible pair, so its true density is a
    certified lower bound.  For the upper bound, partition the ratio line:

    * *settled* territory (leaves solved, intervals pruned or skipped) is
      bounded by ``incumbent + slack`` — each settled mechanism guarantees
      no pair there beats the incumbent by more than the search slack;
    * every *open* interval — the one being processed at cancellation plus
      everything still on the stack — carries its own conditional upper
      bound, valid whenever the optimal ratio lies inside it.

    The optimum's ratio lies in exactly one of those regions, so the max
    over all the regional bounds covers it; the unconditional
    ``global_upper`` caps the result either way.
    """
    density = (
        directed_density_from_indices(graph, state.best_s, state.best_t)
        if state.best_s and state.best_t
        else 0.0
    )
    certified_upper = min(global_upper, max([density + slack, *open_uppers]))
    deadline = engine.deadline
    return AnytimeResult(
        s_nodes=graph.labels_of(state.best_s),
        t_nodes=graph.labels_of(state.best_t),
        density=density,
        upper_bound=certified_upper,
        method=method,
        elapsed_ms=deadline.elapsed_ms() if deadline is not None else 0.0,
    )


def _seed_incumbent_with_peeling(graph: DiGraph, state: _SearchState) -> None:
    """Cheap incumbent: one two-sided peel at ratio 1 (linear time)."""
    subproblem = STSubproblem.from_graph(graph)
    s_nodes, t_nodes, density = peel_fixed_ratio(subproblem, 1.0)
    state.offer(s_nodes, t_nodes, density)


def _seed_incumbent_with_core(graph: DiGraph, state: _SearchState) -> float:
    """Incumbent from the max-product [x, y]-core; returns the core upper bound."""
    bounds = core_based_bounds(graph)
    if not bounds.is_trivial:
        state.offer(bounds.core.s_nodes, bounds.core.t_nodes, bounds.core_density)
        return bounds.upper
    return math.inf


def _dc_driver(
    graph: DiGraph,
    method: str,
    use_core_restriction: bool,
    seed_with_core: bool,
    tolerance: float | None,
    leaf_ratio_count: int,
    flow_solver: str = DEFAULT_SOLVER,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
    warm_start: bool = True,
    batch_size: int = 1,
) -> DDSResult:
    if graph.num_edges == 0:
        raise EmptyGraphError(f"{method} requires a graph with at least one edge")
    n = graph.num_nodes
    tolerance = tolerance if tolerance is not None else exactness_tolerance(graph)
    if tolerance <= 0:
        raise AlgorithmError("tolerance must be positive")
    density_gap = exactness_tolerance(graph)
    # Interior probes refine until the ratio-skipping slack ``eps * cosh`` can
    # drop below the density gap even for maximisers whose ratio sits at the
    # far end of the ratio range (cosh bounded by the full-interval factor).
    fine_tolerance = min(tolerance, density_gap / (2.0 * interval_relaxation_factor(1.0 / n, float(n))))

    engine = engine if engine is not None else FlowEngine(flow_solver)
    network_cache = network_cache if network_cache is not None else NetworkCache()
    state = _SearchState(
        engine=engine,
        network_cache=network_cache,
        engine_snapshot=engine.snapshot(),
    )
    global_upper = global_density_upper_bound(graph)
    if seed_with_core:
        core_upper = _seed_incumbent_with_core(graph, state)
        global_upper = min(global_upper, core_upper)
    else:
        _seed_incumbent_with_peeling(graph, state)

    full_subproblem = STSubproblem.from_graph(graph)
    # An interval whose (i, j) pair count is at most this is cheap enough to
    # expand into distinct ratios; a single ratio point can account for up to
    # n pairs (all multiples), so the threshold must scale with n.
    distinct_check_limit = max(4 * n, 4 * leaf_ratio_count)

    def subproblem_for_interval(lo: float, hi: float) -> STSubproblem:
        if not use_core_restriction:
            return full_subproblem
        core = containing_core(graph, state.best_density, lo, hi)
        if core.is_empty:
            return STSubproblem(graph=graph, s_candidates=[], t_candidates=[], edges=[])
        return STSubproblem.from_graph(graph, core.s_nodes, core.t_nodes)

    def solve_leaf(ratios: list[Fraction], subproblem: STSubproblem, upper_bound: float) -> None:
        pending: list[Fraction] = []
        for ratio in ratios:
            if ratio in state.examined_exact_ratios:
                continue
            state.examined_exact_ratios.add(ratio)
            state.ratios_examined += 1
            state.leaf_ratios += 1
            pending.append(ratio)
        index = 0
        while index < len(pending):
            chunk = pending[index : index + batch_size]
            index += len(chunk)
            if len(chunk) >= 2 and state.engine.supports_batching(
                [decision_network_arc_count(subproblem)] * len(chunk)
            ):
                # Lockstep batched leaf: all of the chunk's searches share the
                # incumbent *at chunk entry* as their lower bound (a sequential
                # sweep would tighten later ratios' bounds with earlier ratios'
                # incumbents — that only changes guess counts, never which
                # pairs are optimal).
                outcomes = maximize_fixed_ratio_batch(
                    subproblem,
                    [float(ratio) for ratio in chunk],
                    lower=state.best_density,
                    upper=max(upper_bound, state.best_density),
                    tolerance=tolerance,
                    engine=state.engine,
                    network_cache=state.network_cache,
                    warm_start=warm_start,
                )
                for outcome in outcomes:
                    state.absorb_outcome(outcome)
                continue
            for ratio in chunk:
                outcome = maximize_fixed_ratio(
                    subproblem,
                    float(ratio),
                    lower=state.best_density,
                    upper=max(upper_bound, state.best_density),
                    tolerance=tolerance,
                    engine=state.engine,
                    network_cache=state.network_cache,
                    warm_start=warm_start,
                )
                state.absorb_outcome(outcome)

    # Depth-first traversal of the ratio-interval tree.  Each entry carries a
    # certified upper bound on the optimum *conditional on the optimal ratio
    # lying inside the interval* — the only conditioning exactness needs.
    stack: list[tuple[float, float, float]] = [(1.0 / n, float(n), global_upper)]
    # Conditional upper bound of the interval currently being processed; at a
    # deadline cancellation it (plus the stack entries' bounds) is exactly the
    # not-yet-settled territory of the anytime upper bound.
    current_upper = global_upper
    try:
        while stack:
            lo, hi, upper_bound = stack.pop()
            if lo > hi:
                continue
            current_upper = upper_bound
            state.intervals_processed += 1
            pair_count = count_candidate_ratios_in_interval(lo, hi, n)
            if pair_count == 0:
                continue

            subproblem = subproblem_for_interval(lo, hi)
            if subproblem.is_empty:
                # The containing core is empty: no pair in this interval can
                # beat the incumbent, so the interval is solved.
                state.intervals_pruned += 1
                continue

            probe_ratio = math.sqrt(lo * hi)
            degenerate = (
                probe_ratio <= lo * (1.0 + 1e-12) or probe_ratio >= hi / (1.0 + 1e-12)
            )
            distinct_ratios: list[Fraction] | None = None
            if pair_count <= distinct_check_limit or degenerate:
                distinct_ratios = candidate_ratios_in_interval(lo, hi, n)
                if all(ratio in state.examined_exact_ratios for ratio in distinct_ratios):
                    continue
            is_leaf = degenerate or (
                distinct_ratios is not None and len(distinct_ratios) <= leaf_ratio_count
            )
            if is_leaf:
                solve_leaf(distinct_ratios or [], subproblem, upper_bound)
                continue

            # -------------------------------------------------- interior probe
            # Stage 1: a coarse probe — enough to prune intervals whose
            # surrogate optimum is clearly dominated by the incumbent.
            state.ratios_examined += 1
            incumbent_at_entry = state.best_density
            coarse_gap = max(
                PROBE_COARSE_FRACTION * max(incumbent_at_entry, 1.0), 10 * tolerance
            )
            outcome = maximize_fixed_ratio(
                subproblem,
                probe_ratio,
                lower=0.0,
                upper=max(upper_bound, 0.0),
                tolerance=fine_tolerance,
                coarse_gap=coarse_gap,
                refine_above=incumbent_at_entry,
                engine=state.engine,
                network_cache=state.network_cache,
                warm_start=warm_start,
            )
            state.absorb_outcome(outcome)
            value_upper = outcome.upper
            last_s, last_t = outcome.last_s, outcome.last_t
            last_surrogate = outcome.last_surrogate

            left_edge, right_edge = _skip_region(
                probe_ratio,
                value_upper,
                state.best_density,
                last_s,
                last_t,
                last_surrogate,
                density_gap,
            )

            if left_edge > lo or right_edge < hi:
                # Stage 2: the coarse probe did not settle the whole interval —
                # refine the bracket until the ratio-skipping lemma's slack
                # condition has a chance to fire, then recompute the skip
                # region.  The network cache hands the refine stage the network
                # the coarse stage just built (same sub-problem, same probe
                # ratio), so this search retunes instead of rebuilding.
                refined = maximize_fixed_ratio(
                    subproblem,
                    probe_ratio,
                    lower=outcome.lower,
                    upper=outcome.upper,
                    tolerance=fine_tolerance,
                    engine=state.engine,
                    network_cache=state.network_cache,
                    warm_start=warm_start,
                )
                state.absorb_outcome(refined)
                value_upper = min(value_upper, refined.upper)
                if refined.found_maximiser and refined.last_surrogate >= last_surrogate:
                    last_s, last_t = refined.last_s, refined.last_t
                    last_surrogate = refined.last_surrogate
                left_edge, right_edge = _skip_region(
                    probe_ratio,
                    value_upper,
                    state.best_density,
                    last_s,
                    last_t,
                    last_surrogate,
                    density_gap,
                )

            child_upper = min(upper_bound, interval_relaxation_factor(lo, hi) * value_upper)
            pushed_any = False
            if left_edge > lo:
                stack.append((lo, min(left_edge, hi), child_upper))
                pushed_any = True
            if right_edge < hi:
                stack.append((max(right_edge, lo), hi, child_upper))
                pushed_any = True
            if not pushed_any:
                state.intervals_pruned += 1
    except DeadlineExceeded as error:
        # Fold the cancelled search's partial bracket(s) into the incumbent —
        # their lower/upper are certified even though the bracket never
        # closed — then attach the anytime result and let the deadline
        # propagate to the session layer.
        for outcome in partial_outcomes(error):
            state.absorb_outcome(outcome)
        error.partial = _anytime_partial(
            graph,
            method,
            state,
            max(tolerance, density_gap),
            global_upper,
            [current_upper, *(entry[2] for entry in stack)],
            state.engine,
        )
        raise

    if not state.best_s or not state.best_t:
        raise AlgorithmError(f"{method} failed to find any non-empty pair")

    density = directed_density_from_indices(graph, state.best_s, state.best_t)
    stats = state.stats()
    stats["tolerance"] = tolerance
    stats["use_core_restriction"] = use_core_restriction
    return DDSResult(
        s_nodes=graph.labels_of(state.best_s),
        t_nodes=graph.labels_of(state.best_t),
        density=density,
        edge_count=graph.count_edges_between(state.best_s, state.best_t),
        method=method,
        is_exact=True,
        stats=stats,
    )


def dc_exact(
    graph: DiGraph,
    config: ExactConfig | None = None,
    *,
    tolerance: float | None = None,
    leaf_ratio_count: int | None = None,
    seed_with_core: bool | None = None,
    flow_solver: str | None = None,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
) -> DDSResult:
    """Exact DDS via divide-and-conquer over the ratio interval (``DCExact``).

    ``config`` is the normalized :class:`~repro.core.config.ExactConfig`;
    the keyword arguments are legacy-compatible per-field overrides resolved
    through it (so invalid values fail with :class:`ConfigError` up front).
    ``config.seed_with_core`` switches the incumbent initialisation from a
    cheap peel to the CoreApprox core (used by the E11 ablation); the search
    space itself is never core-restricted here — that is :func:`core_exact`'s
    job.  ``engine`` and ``network_cache`` are the warm-start hooks a
    :class:`~repro.session.DDSSession` uses to share flow instrumentation and
    decision networks across queries; ``config.flow.warm_start`` additionally
    lets every binary-search min-cut continue from the previous guess's
    residual flow.
    """
    cfg = ExactConfig.resolve(
        config,
        tolerance=tolerance,
        leaf_ratio_count=leaf_ratio_count,
        seed_with_core=seed_with_core,
        flow_solver=flow_solver,
    )
    if network_cache is None:
        network_cache = NetworkCache(cfg.flow.network_cache_size)
    return _dc_driver(
        graph,
        method="dc-exact",
        use_core_restriction=False,
        seed_with_core=cfg.seed_with_core,
        tolerance=cfg.tolerance,
        leaf_ratio_count=cfg.leaf_ratio_count,
        flow_solver=cfg.flow.solver,
        engine=engine,
        network_cache=network_cache,
        warm_start=cfg.flow.warm_start,
        batch_size=cfg.flow.batch_size,
    )
