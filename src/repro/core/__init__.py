"""Directed densest-subgraph discovery (the paper's primary contribution).

Public surface:

* :class:`repro.session.DDSSession` — the session API (construct once per
  graph, query many times against shared caches); the one-shot
  :func:`densest_subgraph` below remains as a deprecation shim;
* typed configs — :class:`ExactConfig`, :class:`ApproxConfig`,
  :class:`FlowConfig` (:mod:`repro.core.config`);
* the method registry — :class:`MethodSpec`, :func:`register_method`
  (:mod:`repro.core.method_registry`);
* exact algorithms — :func:`flow_exact` (baseline), :func:`dc_exact`
  (divide-and-conquer over ratios), :func:`core_exact` (divide-and-conquer
  plus [x, y]-core pruning — the paper's headline algorithm);
* approximation algorithms — :func:`core_approx` (2-approximation from the
  maximum-product [x, y]-core), :func:`inc_approx` (same answer via the full
  skyline), :func:`peel_approx` (ratio-sweep peeling baseline);
* [x, y]-core machinery — :func:`xy_core`, :func:`max_xy_core`,
  :func:`xy_core_skyline`, :func:`core_based_bounds`;
* density utilities — :func:`directed_density`, :class:`DDSResult`,
  :func:`brute_force_dds`.
"""

from repro.core.api import AUTO_EXACT_NODE_LIMIT, available_methods, densest_subgraph
from repro.core.approx_core import core_approx, inc_approx
from repro.core.approx_peel import peel_approx, peel_fixed_ratio
from repro.core.bounds import CoreBounds, containing_core, containing_core_orders, core_based_bounds
from repro.core.bruteforce import brute_force_dds
from repro.core.config import ApproxConfig, ExactConfig, FlowConfig
from repro.core.density import (
    directed_density,
    directed_density_from_indices,
    edge_count_between,
    exactness_tolerance,
    global_density_upper_bound,
    interval_relaxation_factor,
    surrogate_density,
)
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.core.method_registry import (
    MethodSpec,
    get_method_spec,
    method_specs,
    register_method,
    unregister_method,
)
from repro.core.network_cache import NetworkCache
from repro.core.results import DDSResult, FixedRatioOutcome
from repro.core.topk import top_k_densest
from repro.core.verify import VerificationReport, is_locally_maximal, verify_result
from repro.core.xycore import XYCore, max_xy_core, xy_core, xy_core_skyline

__all__ = [
    "densest_subgraph",
    "available_methods",
    "AUTO_EXACT_NODE_LIMIT",
    "ExactConfig",
    "ApproxConfig",
    "FlowConfig",
    "MethodSpec",
    "get_method_spec",
    "method_specs",
    "register_method",
    "unregister_method",
    "NetworkCache",
    "DDSResult",
    "FixedRatioOutcome",
    "directed_density",
    "directed_density_from_indices",
    "edge_count_between",
    "surrogate_density",
    "interval_relaxation_factor",
    "global_density_upper_bound",
    "exactness_tolerance",
    "brute_force_dds",
    "flow_exact",
    "dc_exact",
    "core_exact",
    "core_approx",
    "inc_approx",
    "peel_approx",
    "peel_fixed_ratio",
    "XYCore",
    "xy_core",
    "max_xy_core",
    "xy_core_skyline",
    "CoreBounds",
    "core_based_bounds",
    "containing_core",
    "containing_core_orders",
    "top_k_densest",
    "verify_result",
    "is_locally_maximal",
    "VerificationReport",
]
