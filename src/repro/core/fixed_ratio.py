"""Binary-search maximisation of the fixed-ratio surrogate objective.

For a ratio ``a`` define

    val(a) = max over non-empty S, T of  |E'(S,T)| / D_a(S,T),
    D_a(S,T) = (|S|/sqrt(a) + sqrt(a)*|T|) / 2.

``val(a)`` is a lower bound on ``rho_opt`` for every ``a`` and equals
``rho_opt`` when ``a`` is the optimal ratio ``|S*|/|T*|`` (AM–GM).  The
function below brackets ``val(a)`` with a binary search whose decision step
is one min-cut on the network of :mod:`repro.core.flow_network`.

The decision network is built **once per search** and re-parameterised in
place (:meth:`~repro.core.flow_network.DecisionNetwork.retune`) between
binary-search iterations: only the guess-dependent penalty-arc capacities
change with the guess, so network construction is O(m') per search instead
of O(flow_calls * m').  With ``warm_start`` (the default) the retune also
*keeps the residual flow* of the previous guess — clamped to the new
penalty capacities — so each min-cut after the first continues from a
nearly-maximal flow instead of starting from zero; the answers are
bit-identical, only ``arcs_pushed`` shrinks.  Min-cuts run through a
caller-supplied :class:`~repro.flow.engine.FlowEngine`, which picks the
solver (registry name) and accumulates ``flow_calls`` / ``networks_built``
/ ``arcs_pushed`` / ``warm_starts_used`` across the whole algorithm run
(see the stats glossary in :mod:`repro.flow.engine`).

Two refinements keep the number of max-flow calls small:

* **Dinkelbach acceleration** — whenever a guess succeeds, the extracted pair
  is itself a feasible witness, so the lower bracket jumps to that pair's
  surrogate value rather than merely to the guess; convergence towards
  ``val(a)`` from below is then typically a handful of cuts.
* **coarse / early stopping** — the divide-and-conquer driver often only
  needs a *valid upper bound* on ``val(a)`` (any failed guess provides one),
  so it can ask the search to stop at a coarse gap unless the probe is
  actually beating the incumbent (``refine_above``), and can stop outright
  once the bracket crosses a pruning threshold (``stop_when_*``).

The search keeps track of two extracted pairs: the one with the best *true*
density (for the incumbent) and the one extracted at the highest successful
guess (the surrogate near-maximiser the ratio-skipping lemma needs).
"""

from __future__ import annotations

from typing import Callable

from repro.core.density import directed_density_from_indices, surrogate_density
from repro.core.flow_network import build_decision_network, decision_cut_is_improving
from repro.core.network_cache import NetworkCache
from repro.core.results import FixedRatioOutcome
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError, DeadlineExceeded
from repro.flow.engine import FlowEngine

NetworkObserver = Callable[[int, int], None]


def partial_outcomes(error: DeadlineExceeded) -> list[FixedRatioOutcome]:
    """The partial search outcomes a cancelled fixed-ratio search attached.

    A :class:`DeadlineExceeded` escaping :func:`maximize_fixed_ratio`
    carries the interrupted search's bracket-at-cancellation as
    ``error.outcome``; one escaping :func:`maximize_fixed_ratio_batch`
    carries every member's as ``error.outcomes``.  Either way each outcome's
    ``lower``/``upper`` are certified bounds (the bracket never closed), so
    the exact drivers absorb them into the incumbent exactly like completed
    searches before assembling their anytime result.
    """
    outcomes = list(getattr(error, "outcomes", None) or ())
    single = getattr(error, "outcome", None)
    if single is not None:
        outcomes.append(single)
    return outcomes


class _LockstepSearch:
    """Per-ratio binary-search state of one member of a batched solve."""

    __slots__ = (
        "ratio",
        "low",
        "high",
        "best_s",
        "best_t",
        "best_density",
        "last_s",
        "last_t",
        "last_surrogate",
        "flow_calls",
        "networks_built",
        "networks_reused",
        "warm_starts_used",
        "cold_starts",
        "network_nodes",
        "network_arcs",
        "decision",
        "guess",
    )

    def __init__(self, ratio: float, lower: float, upper: float) -> None:
        self.ratio = ratio
        self.low = float(lower)
        self.high = max(float(upper), self.low)
        self.best_s: list[int] = []
        self.best_t: list[int] = []
        self.best_density = 0.0
        self.last_s: list[int] = []
        self.last_t: list[int] = []
        self.last_surrogate = 0.0
        self.flow_calls = 0
        self.networks_built = 0
        self.networks_reused = 0
        self.warm_starts_used = 0
        self.cold_starts = 0
        self.network_nodes: list[int] = []
        self.network_arcs: list[int] = []
        self.decision = None
        self.guess = 0.0

    def outcome(self) -> FixedRatioOutcome:
        return FixedRatioOutcome(
            ratio=self.ratio,
            lower=self.low,
            upper=self.high,
            best_s=self.best_s,
            best_t=self.best_t,
            best_density=self.best_density,
            flow_calls=self.flow_calls,
            networks_built=self.networks_built,
            networks_reused=self.networks_reused,
            warm_starts_used=self.warm_starts_used,
            cold_starts=self.cold_starts,
            last_s=self.last_s,
            last_t=self.last_t,
            last_surrogate=self.last_surrogate,
            network_nodes=self.network_nodes,
            network_arcs=self.network_arcs,
        )


def maximize_fixed_ratio_batch(
    subproblem: STSubproblem,
    ratios: list[float],
    lower: float,
    upper: float,
    tolerance: float,
    network_observer: NetworkObserver | None = None,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
    warm_start: bool = True,
) -> list[FixedRatioOutcome]:
    """Run one :func:`maximize_fixed_ratio` per ratio, batched block-diagonally.

    All searches share ``subproblem`` and the initial ``(lower, upper)``
    bracket; each advances its own bracket.  The searches run in *lockstep*:
    every round retunes the still-unconverged members to their midpoint
    guesses and solves all of them as one stacked min-cut through
    :meth:`FlowEngine.min_cut_batch
    <repro.flow.engine.FlowEngine.min_cut_batch>` — B small solves become
    one big solve with B× the vector width, which is what makes the
    vectorised backend pay off on networks that are each below the auto arc
    threshold.  Members whose bracket closes are masked out of later rounds.

    Per member, every step — cache lookup, build-or-retune, warm/cold
    accounting, cut-improvement test, pair extraction, Dinkelbach bracket
    update — mirrors the sequential search exactly, and the per-block cut is
    the same canonical (residual-reachable) cut a solo solve certifies, so
    the returned outcomes carry identical subgraphs.  One documented
    deviation: all members read the *same* entry ``lower`` (a sequential
    sweep could tighten later searches' lower bounds with earlier searches'
    incumbents); a looser lower bound never changes which pairs are optimal,
    only how many guesses a search spends, so densities are unaffected.

    Callers gate eligibility with :meth:`FlowEngine.supports_batching
    <repro.flow.engine.FlowEngine.supports_batching>`; this function assumes
    the gate passed (at least two distinct ratios, ``"auto"`` engine,
    vectorised backend available).
    """
    if lower < 0 or upper < 0:
        raise AlgorithmError("bounds must be non-negative")
    if tolerance <= 0:
        raise AlgorithmError(f"tolerance must be > 0, got {tolerance}")
    if len(ratios) < 2:
        raise AlgorithmError("a batched search needs at least two ratios")
    if len(set(ratios)) != len(ratios):
        raise AlgorithmError("batched ratios must be distinct (they share one cache)")
    if subproblem.is_empty:
        return [
            FixedRatioOutcome(
                ratio=ratio,
                lower=0.0,
                upper=0.0,
                best_s=[],
                best_t=[],
                best_density=0.0,
                flow_calls=0,
            )
            for ratio in ratios
        ]

    if engine is None:
        engine = FlowEngine()
    use_warm = bool(warm_start) and engine.warm_capable
    if warm_start and not engine.warm_capable:
        engine.note_warm_fallback()

    graph = subproblem.graph
    members = [_LockstepSearch(float(ratio), lower, upper) for ratio in ratios]
    batch = None

    try:
        while True:
            active = [
                index
                for index, member in enumerate(members)
                if member.high - member.low >= tolerance
            ]
            if not active:
                break

            warm_flags: list[bool] = []
            for index in active:
                member = members[index]
                member.guess = (member.low + member.high) / 2.0
                solve_warm = use_warm
                if member.decision is None:
                    if network_cache is not None:
                        member.decision = network_cache.get(subproblem, member.ratio)
                    if member.decision is not None:
                        engine.note_network_reused()
                        member.networks_reused += 1
                        member.decision.retune(
                            member.ratio, member.guess, warm_start=use_warm
                        )
                    else:
                        member.decision = build_decision_network(
                            subproblem, member.ratio, member.guess
                        )
                        engine.note_network_built()
                        member.networks_built += 1
                        solve_warm = False  # a fresh network holds no flow to reuse
                        if network_cache is not None:
                            network_cache.put(subproblem, member.ratio, member.decision)
                    if network_observer is not None:
                        network_observer(
                            member.decision.num_nodes, member.decision.num_arcs
                        )
                else:
                    member.decision.retune(member.ratio, member.guess, warm_start=use_warm)
                member.network_nodes.append(member.decision.num_nodes)
                member.network_arcs.append(member.decision.num_arcs)
                warm_flags.append(solve_warm)

            if batch is None:
                # All members were active in round one, so every decision
                # network exists by the time the stack is assembled.
                from repro.flow.batch import BatchedFlowNetwork

                batch = BatchedFlowNetwork(
                    [
                        (member.decision.network, member.decision.source, member.decision.sink)
                        for member in members
                    ]
                )

            results = engine.min_cut_batch(batch, active, warm_flags)
            for position, index in enumerate(active):
                member = members[index]
                cut_value, source_side, _block_pushes = results[position]
                member.flow_calls += 1
                if warm_flags[position]:
                    member.warm_starts_used += 1
                else:
                    member.cold_starts += 1

                extracted = False
                if decision_cut_is_improving(cut_value, member.decision.total_capacity):
                    s_side, t_side = member.decision.extract_pair(source_side)
                    if s_side and t_side:
                        extracted = True
                        edges = graph.count_edges_between(s_side, t_side)
                        surrogate = surrogate_density(
                            edges, len(s_side), len(t_side), member.ratio
                        )
                        density = directed_density_from_indices(graph, s_side, t_side)
                        if density > member.best_density:
                            member.best_density = density
                            member.best_s, member.best_t = s_side, t_side
                        if surrogate >= member.last_surrogate:
                            member.last_surrogate = surrogate
                            member.last_s, member.last_t = s_side, t_side
                        member.low = max(member.guess, surrogate)
                if not extracted:
                    member.high = member.guess
    except DeadlineExceeded as error:
        # A cancelled round never updated any member's bracket, so every
        # member's (low, high) is still certified; hand all of them to the
        # driver as the anytime state of this lockstep sweep.
        error.outcomes = [member.outcome() for member in members]
        raise

    return [member.outcome() for member in members]


def maximize_fixed_ratio(
    subproblem: STSubproblem,
    ratio: float,
    lower: float,
    upper: float,
    tolerance: float,
    coarse_gap: float | None = None,
    refine_above: float | None = None,
    stop_when_upper_below: float | None = None,
    stop_when_lower_above: float | None = None,
    network_observer: NetworkObserver | None = None,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
    warm_start: bool = True,
) -> FixedRatioOutcome:
    """Bracket ``val(ratio)`` within ``tolerance`` (or until an early stop fires).

    Parameters
    ----------
    subproblem:
        The (possibly core-restricted) search space.
    ratio:
        The probe ratio ``a``.
    lower, upper:
        Initial bracket; ``lower`` must not exceed ``val(ratio)`` *if the
        caller wants extraction* — passing a larger ``lower`` is allowed and
        simply means "only look for pairs with surrogate density above it".
        ``upper`` must be a true upper bound on ``val(ratio)``.
    tolerance:
        Hard stop once ``upper - lower < tolerance``.
    coarse_gap:
        Optional soft stop: once ``upper - lower < coarse_gap`` the search
        stops *unless* the best surrogate seen exceeds ``refine_above`` (in
        which case it keeps refining down to ``tolerance``).
    network_observer:
        Optional callback ``(num_nodes, num_arcs)`` invoked once per search
        for the network the search uses — freshly built *or* served by the
        network cache (feeds experiment E7).
    engine:
        The :class:`~repro.flow.engine.FlowEngine` executing the min-cuts
        (solver choice + run-wide instrumentation).  A private Dinic engine
        is created when omitted.
    network_cache:
        Optional :class:`~repro.core.network_cache.NetworkCache`.  When the
        cache holds a network for ``(subproblem, ratio)`` the search retunes
        it instead of building one (``networks_reused`` instead of
        ``networks_built``); a freshly built network is deposited for later
        searches — this is how the coarse and refine stages of the DC
        interior probe, and repeated session queries, share networks.
    warm_start:
        Continue each min-cut from the residual flow left by the previous
        one (previous guess, or — for cache-served networks — the previous
        search) instead of resetting to zero flow.  Answers are identical
        either way; only the per-solve work changes.  Ignored, with a
        recorded ``warm_start_fallbacks`` count, when the engine's solver
        cannot warm start.

    Returns
    -------
    FixedRatioOutcome
        Final bracket, best-true-density pair, surrogate near-maximiser, and
        instrumentation.  ``outcome.upper`` is always a certified upper bound
        on ``val(ratio)`` and ``outcome.lower`` a certified lower bound.
    """
    if lower < 0 or upper < 0:
        raise AlgorithmError("bounds must be non-negative")
    if tolerance <= 0:
        raise AlgorithmError(f"tolerance must be > 0, got {tolerance}")
    if subproblem.is_empty:
        return FixedRatioOutcome(
            ratio=ratio,
            lower=0.0,
            upper=0.0,
            best_s=[],
            best_t=[],
            best_density=0.0,
            flow_calls=0,
        )

    if engine is None:
        engine = FlowEngine()
    use_warm = bool(warm_start) and engine.warm_capable
    if warm_start and not engine.warm_capable:
        engine.note_warm_fallback()

    graph = subproblem.graph
    low = float(lower)
    high = max(float(upper), low)
    best_s: list[int] = []
    best_t: list[int] = []
    best_density = 0.0
    last_s: list[int] = []
    last_t: list[int] = []
    last_surrogate = 0.0
    flow_calls = 0
    networks_built = 0
    networks_reused = 0
    warm_starts_used = 0
    cold_starts = 0
    network_nodes: list[int] = []
    network_arcs: list[int] = []
    decision = None

    def snapshot() -> FixedRatioOutcome:
        # The bracket invariants hold at *every* loop boundary, so this is a
        # valid outcome whether the search converged, stopped early, or was
        # cancelled by a deadline mid-search.
        return FixedRatioOutcome(
            ratio=ratio,
            lower=low,
            upper=high,
            best_s=best_s,
            best_t=best_t,
            best_density=best_density,
            flow_calls=flow_calls,
            networks_built=networks_built,
            networks_reused=networks_reused,
            warm_starts_used=warm_starts_used,
            cold_starts=cold_starts,
            last_s=last_s,
            last_t=last_t,
            last_surrogate=last_surrogate,
            network_nodes=network_nodes,
            network_arcs=network_arcs,
        )

    try:
        while high - low >= tolerance:
            if coarse_gap is not None and high - low < coarse_gap:
                if refine_above is None or last_surrogate <= refine_above:
                    break
            if stop_when_upper_below is not None and high < stop_when_upper_below:
                break
            if stop_when_lower_above is not None and low > stop_when_lower_above:
                break

            guess = (low + high) / 2.0
            solve_warm = use_warm
            if decision is None:
                if network_cache is not None:
                    decision = network_cache.get(subproblem, ratio)
                if decision is not None:
                    engine.note_network_reused()
                    networks_reused += 1
                    # A cache-served network still carries the residual flow of
                    # its last solve; a warm retune keeps it as the start state.
                    decision.retune(ratio, guess, warm_start=use_warm)
                else:
                    decision = build_decision_network(subproblem, ratio, guess)
                    engine.note_network_built()
                    networks_built += 1
                    solve_warm = False  # a fresh network holds no flow to reuse
                    if network_cache is not None:
                        network_cache.put(subproblem, ratio, decision)
                if network_observer is not None:
                    network_observer(decision.num_nodes, decision.num_arcs)
            else:
                decision.retune(ratio, guess, warm_start=use_warm)
            network_nodes.append(decision.num_nodes)
            network_arcs.append(decision.num_arcs)

            cut_value, solver = engine.min_cut(
                decision.network, decision.source, decision.sink, warm_start=solve_warm
            )
            flow_calls += 1
            if solve_warm:
                warm_starts_used += 1
            else:
                cold_starts += 1

            extracted = False
            if decision_cut_is_improving(cut_value, decision.total_capacity):
                s_side, t_side = decision.extract_pair(solver.min_cut_source_side())
                if s_side and t_side:
                    extracted = True
                    edges = graph.count_edges_between(s_side, t_side)
                    surrogate = surrogate_density(edges, len(s_side), len(t_side), ratio)
                    density = directed_density_from_indices(graph, s_side, t_side)
                    if density > best_density:
                        best_density = density
                        best_s, best_t = s_side, t_side
                    if surrogate >= last_surrogate:
                        last_surrogate = surrogate
                        last_s, last_t = s_side, t_side
                    # Dinkelbach jump: the extracted pair certifies a surrogate
                    # value at least `surrogate`, which is never below the guess.
                    low = max(guess, surrogate)
                else:
                    extracted = False
            if not extracted:
                high = guess
    except DeadlineExceeded as error:
        # A cancelled min-cut never advanced the bracket, so (low, high)
        # are still certified bounds on val(ratio); attach them for the
        # driver's anytime result.
        error.outcome = snapshot()
        raise

    return snapshot()
