"""``FlowExact`` — the baseline exact DDS algorithm (all candidate ratios).

This is the reproduction of the state-of-the-art *prior* to the paper: for
every distinct candidate ratio ``a = i/j`` (``1 <= i, j <= n``) run a binary
search over the guess ``g``, each step of which is one min-cut computation on
the decision network.  For the ratio equal to ``|S*|/|T*|`` the surrogate is
tight, so the best pair extracted over all ratios is the exact DDS.

The algorithm needs ``Theta(n^2)`` binary searches and is therefore only
usable on small graphs — exactly the behaviour the paper's evaluation
highlights and that experiments E2/E6 reproduce.
"""

from __future__ import annotations

from repro.core.config import ExactConfig
from repro.core.density import (
    directed_density_from_indices,
    exactness_tolerance,
    global_density_upper_bound,
)
from repro.core.fixed_ratio import (
    maximize_fixed_ratio,
    maximize_fixed_ratio_batch,
    partial_outcomes,
)
from repro.core.flow_network import decision_network_arc_count
from repro.core.network_cache import NetworkCache
from repro.core.ratio import all_candidate_ratios
from repro.core.results import DDSResult
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError, DeadlineExceeded, EmptyGraphError
from repro.flow.engine import FlowEngine
from repro.graph.digraph import DiGraph
from repro.runtime import AnytimeResult

#: FlowExact runs one binary search per distinct ratio; above this node count
#: that is hopeless in pure Python, so we refuse instead of hanging.
DEFAULT_NODE_LIMIT = 300


def flow_exact(
    graph: DiGraph,
    config: ExactConfig | None = None,
    *,
    node_limit: int | None = None,
    tolerance: float | None = None,
    flow_solver: str | None = None,
    engine: FlowEngine | None = None,
    network_cache: NetworkCache | None = None,
) -> DDSResult:
    """Exact DDS via exhaustive ratio enumeration (baseline ``Exact``).

    Parameters
    ----------
    graph:
        Input digraph with at least one edge.
    config:
        Normalized :class:`~repro.core.config.ExactConfig`; its
        ``node_limit`` guards against accidentally running the
        quadratic-ratio baseline on a large graph (default
        :data:`DEFAULT_NODE_LIMIT`) and its ``tolerance`` is the
        binary-search stopping gap (default: the provably-exact
        :func:`~repro.core.density.exactness_tolerance`).
    node_limit / tolerance / flow_solver:
        Legacy per-field overrides resolved through ``config``.
    engine / network_cache:
        Session warm-start hooks (shared instrumentation and decision
        networks).
    """
    cfg = ExactConfig.resolve(
        config, node_limit=node_limit, tolerance=tolerance, flow_solver=flow_solver
    )
    if graph.num_edges == 0:
        raise EmptyGraphError("flow_exact requires a graph with at least one edge")
    n = graph.num_nodes
    limit = cfg.node_limit if cfg.node_limit is not None else DEFAULT_NODE_LIMIT
    if n > limit:
        raise AlgorithmError(
            f"flow_exact enumerates O(n^2) ratios and is limited to n <= {limit}; "
            f"got n = {n}. Use dc_exact/core_exact instead."
        )

    tolerance = cfg.tolerance if cfg.tolerance is not None else exactness_tolerance(graph)
    upper = global_density_upper_bound(graph)
    subproblem = STSubproblem.from_graph(graph)
    engine = engine if engine is not None else FlowEngine(cfg.flow.solver)
    snapshot = engine.snapshot()
    if network_cache is None:
        network_cache = NetworkCache(cfg.flow.network_cache_size)

    best_s: list[int] = []
    best_t: list[int] = []
    best_density = 0.0
    fixed_ratio_searches = 0
    ratios = all_candidate_ratios(n)

    # Under the auto policy, consecutive ratios whose (identically sized)
    # decision networks are each below the vector backend's arc threshold but
    # clear it in aggregate are searched in lockstep as one block-diagonal
    # batched solve; everything else takes the sequential path unchanged.
    arc_count = decision_network_arc_count(subproblem)

    def absorb(outcome) -> None:
        nonlocal best_s, best_t, best_density, fixed_ratio_searches
        if outcome.flow_calls:
            fixed_ratio_searches += 1
        if outcome.best_density > best_density:
            best_density = outcome.best_density
            best_s, best_t = outcome.best_s, outcome.best_t

    index = 0
    try:
        while index < len(ratios):
            chunk = ratios[index : index + cfg.flow.batch_size]
            index += len(chunk)
            if len(chunk) >= 2 and engine.supports_batching([arc_count] * len(chunk)):
                for outcome in maximize_fixed_ratio_batch(
                    subproblem,
                    [float(ratio) for ratio in chunk],
                    lower=0.0,
                    upper=upper,
                    tolerance=tolerance,
                    engine=engine,
                    network_cache=network_cache,
                    warm_start=cfg.flow.warm_start,
                ):
                    absorb(outcome)
            else:
                # Absorb one search at a time so a mid-chunk deadline keeps the
                # incumbents of the searches that did finish.
                for ratio in chunk:
                    absorb(
                        maximize_fixed_ratio(
                            subproblem,
                            float(ratio),
                            lower=0.0,
                            upper=upper,
                            tolerance=tolerance,
                            engine=engine,
                            network_cache=network_cache,
                            warm_start=cfg.flow.warm_start,
                        )
                    )
    except DeadlineExceeded as error:
        for outcome in partial_outcomes(error):
            absorb(outcome)
        # Unexamined ratios have no bound tighter than the global one, so the
        # anytime upper bound for the baseline stays at ``upper``; the
        # incumbent's true density is the certified lower bound.
        density = (
            directed_density_from_indices(graph, best_s, best_t)
            if best_s and best_t
            else 0.0
        )
        error.partial = AnytimeResult(
            s_nodes=graph.labels_of(best_s),
            t_nodes=graph.labels_of(best_t),
            density=density,
            upper_bound=upper,
            method="flow-exact",
            elapsed_ms=engine.deadline.elapsed_ms() if engine.deadline is not None else 0.0,
        )
        raise

    if not best_s or not best_t:
        raise AlgorithmError("flow_exact failed to find any non-empty pair")

    density = directed_density_from_indices(graph, best_s, best_t)
    stats = {
        "ratios_examined": len(ratios),
        "fixed_ratio_searches": fixed_ratio_searches,
        "tolerance": tolerance,
    }
    stats.update(engine.stats_since(snapshot))
    return DDSResult(
        s_nodes=graph.labels_of(best_s),
        t_nodes=graph.labels_of(best_t),
        density=density,
        edge_count=graph.count_edges_between(best_s, best_t),
        method="flow-exact",
        is_exact=True,
        stats=stats,
    )
