"""Result objects returned by every DDS algorithm.

All algorithms — exact, approximate, and baseline — return the same
:class:`DDSResult` structure so that benchmark harnesses, examples, and tests
can treat them uniformly.  ``stats`` carries per-algorithm instrumentation
(number of max-flow calls, flow-network sizes, ratios examined, ...) used by
experiments E6 and E7.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.graph.digraph import NodeLabel

#: Version of the JSON document produced by :meth:`DDSResult.to_dict`.
#: Bump whenever a key is renamed or removed (additions are backwards
#: compatible and do not require a bump).
RESULT_SCHEMA_VERSION = 1


def _json_label(label: NodeLabel) -> Any:
    """Node labels pass through when JSON-native, otherwise stringify."""
    if isinstance(label, (str, int, float, bool)) or label is None:
        return label
    return str(label)


@dataclass
class DDSResult:
    """A directed densest-subgraph answer: the pair ``(S, T)`` plus metadata.

    Attributes
    ----------
    s_nodes / t_nodes:
        Node labels of the two sides.  The sets may overlap.
    density:
        ``|E(S, T)| / sqrt(|S| * |T|)``, computed directly on the input graph.
    edge_count:
        ``|E(S, T)|``.
    method:
        Name of the algorithm that produced the result.
    is_exact:
        Whether the algorithm guarantees optimality.
    approximation_ratio:
        Worst-case guarantee ``density >= rho_opt / approximation_ratio``
        (1.0 for exact algorithms).
    stats:
        Free-form instrumentation (flow calls, ratios, timings, ...).
    """

    s_nodes: list[NodeLabel]
    t_nodes: list[NodeLabel]
    density: float
    edge_count: int
    method: str
    is_exact: bool
    approximation_ratio: float = 1.0
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def s_size(self) -> int:
        """``|S|``."""
        return len(self.s_nodes)

    @property
    def t_size(self) -> int:
        """``|T|``."""
        return len(self.t_nodes)

    @property
    def ratio(self) -> float:
        """``|S| / |T|`` (0.0 when ``T`` is empty)."""
        if not self.t_nodes:
            return 0.0
        return len(self.s_nodes) / len(self.t_nodes)

    def summary(self) -> dict[str, Any]:
        """Compact dictionary used by the benchmark table printers."""
        return {
            "method": self.method,
            "density": round(self.density, 6),
            "|S|": self.s_size,
            "|T|": self.t_size,
            "edges": self.edge_count,
            "exact": self.is_exact,
        }

    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-ready document describing this result.

        The schema is versioned (``schema_version``) and covered by the test
        suite; ``stats`` carries the per-algorithm instrumentation verbatim,
        including the flow-engine counters and — for session-served queries —
        the cache-hit markers (``result_cache_hit``, ``networks_reused``).
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "method": self.method,
            "density": self.density,
            "edge_count": self.edge_count,
            "s_size": self.s_size,
            "t_size": self.t_size,
            "s_nodes": [_json_label(node) for node in self.s_nodes],
            "t_nodes": [_json_label(node) for node in self.t_nodes],
            "is_exact": self.is_exact,
            "approximation_ratio": self.approximation_ratio,
            "stats": self.stats,
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialise :meth:`to_dict` (non-JSON stats values are stringified)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DDSResult(method={self.method!r}, density={self.density:.4f}, "
            f"|S|={self.s_size}, |T|={self.t_size}, edges={self.edge_count})"
        )


@dataclass
class FixedRatioOutcome:
    """Outcome of maximising the ratio-``a`` surrogate objective.

    ``lower``/``upper`` bracket the surrogate optimum ``val(a)``;
    ``best_s`` / ``best_t`` (graph node indices) are the extracted pair with
    the highest *true* density, while ``last_s`` / ``last_t`` are the pair
    extracted at the highest successful guess — the (near-)maximiser of the
    surrogate, which the divide-and-conquer ratio-skipping lemma needs —
    together with its surrogate value ``last_surrogate``.  ``flow_calls``,
    ``networks_built`` / ``networks_reused`` (one search uses exactly one
    network: freshly built, or served by a
    :class:`~repro.core.network_cache.NetworkCache`) and ``network_nodes``
    feed experiments E6/E7 and the flow-engine regression tests;
    ``warm_starts_used`` / ``cold_starts`` split ``flow_calls`` by whether
    the solver continued from the previous guess's residual flow (see the
    stats glossary in :mod:`repro.flow.engine`).
    """

    ratio: float
    lower: float
    upper: float
    best_s: list[int]
    best_t: list[int]
    best_density: float
    flow_calls: int
    networks_built: int = 0
    networks_reused: int = 0
    warm_starts_used: int = 0
    cold_starts: int = 0
    last_s: list[int] = field(default_factory=list)
    last_t: list[int] = field(default_factory=list)
    last_surrogate: float = 0.0
    network_nodes: list[int] = field(default_factory=list)
    network_arcs: list[int] = field(default_factory=list)

    @property
    def found_pair(self) -> bool:
        """Whether any pair beating the initial lower bound was extracted."""
        return bool(self.best_s) and bool(self.best_t)

    @property
    def found_maximiser(self) -> bool:
        """Whether a surrogate (near-)maximiser was extracted."""
        return bool(self.last_s) and bool(self.last_t)
