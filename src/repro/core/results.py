"""Result objects returned by every DDS algorithm.

All algorithms — exact, approximate, and baseline — return the same
:class:`DDSResult` structure so that benchmark harnesses, examples, and tests
can treat them uniformly.  ``stats`` carries per-algorithm instrumentation
(number of max-flow calls, flow-network sizes, ratios examined, ...) used by
experiments E6 and E7.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import StoreError
from repro.graph.digraph import NodeLabel

#: Version of the JSON document produced by :meth:`DDSResult.to_dict`.
#: Bump whenever a key is renamed or removed, or an existing key's value
#: contract changes (additions are backwards compatible and do not require
#: a bump).  Version 2 tightened ``stats``: every value is now JSON-native
#: (containers converted, exotic scalars stringified) so that
#: ``from_json(result.to_json())`` is a lossless round trip — the contract
#: the persistent session store (:mod:`repro.service.store`) relies on.
RESULT_SCHEMA_VERSION = 2

#: Schema versions :meth:`DDSResult.from_dict` knows how to read.  Version 1
#: documents are a subset of version 2 (same keys, looser stats values), so
#: both load.
READABLE_SCHEMA_VERSIONS = (1, 2)


def _json_label(label: NodeLabel) -> Any:
    """Node labels pass through when JSON-native, otherwise stringify."""
    if isinstance(label, (str, int, float, bool)) or label is None:
        return label
    return str(label)


def json_native_label(label: NodeLabel) -> bool:
    """Whether ``label`` survives a JSON round trip unchanged.

    ``bool`` is checked before ``int`` only for clarity — JSON keeps the
    distinction anyway.  Labels failing this test are stringified by
    :meth:`DDSResult.to_dict`, so a result holding them cannot round trip
    losslessly; the persistent store skips such results.
    """
    return isinstance(label, (str, int, float, bool)) or label is None


def _sanitize_stats_value(value: Any) -> Any:
    """Recursively coerce a stats value to JSON-native types.

    Dicts keep (stringified) keys, lists/tuples become lists, JSON scalars
    pass through, everything else is stringified — the same fallback
    ``to_json`` historically applied at dump time, now applied structurally
    so ``to_dict`` output equals what ``json.loads(to_json(...))`` returns.
    """
    if isinstance(value, dict):
        return {str(key): _sanitize_stats_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_stats_value(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class DDSResult:
    """A directed densest-subgraph answer: the pair ``(S, T)`` plus metadata.

    Attributes
    ----------
    s_nodes / t_nodes:
        Node labels of the two sides.  The sets may overlap.
    density:
        ``|E(S, T)| / sqrt(|S| * |T|)``, computed directly on the input graph.
    edge_count:
        ``|E(S, T)|``.
    method:
        Name of the algorithm that produced the result.
    is_exact:
        Whether the algorithm guarantees optimality.
    approximation_ratio:
        Worst-case guarantee ``density >= rho_opt / approximation_ratio``
        (1.0 for exact algorithms).
    stats:
        Free-form instrumentation (flow calls, ratios, timings, ...).
    """

    s_nodes: list[NodeLabel]
    t_nodes: list[NodeLabel]
    density: float
    edge_count: int
    method: str
    is_exact: bool
    approximation_ratio: float = 1.0
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def s_size(self) -> int:
        """``|S|``."""
        return len(self.s_nodes)

    @property
    def t_size(self) -> int:
        """``|T|``."""
        return len(self.t_nodes)

    @property
    def ratio(self) -> float:
        """``|S| / |T|`` (0.0 when ``T`` is empty)."""
        if not self.t_nodes:
            return 0.0
        return len(self.s_nodes) / len(self.t_nodes)

    def summary(self) -> dict[str, Any]:
        """Compact dictionary used by the benchmark table printers."""
        return {
            "method": self.method,
            "density": round(self.density, 6),
            "|S|": self.s_size,
            "|T|": self.t_size,
            "edges": self.edge_count,
            "exact": self.is_exact,
        }

    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-ready document describing this result.

        The schema is versioned (``schema_version``) and covered by the test
        suite; ``stats`` carries the per-algorithm instrumentation —
        including the flow-engine counters and, for session-served queries,
        the cache-hit markers (``result_cache_hit``, ``networks_reused``) —
        coerced to JSON-native values (schema version 2), so the document
        round trips losslessly through :meth:`from_dict`.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "method": self.method,
            "density": self.density,
            "edge_count": self.edge_count,
            "s_size": self.s_size,
            "t_size": self.t_size,
            "s_nodes": [_json_label(node) for node in self.s_nodes],
            "t_nodes": [_json_label(node) for node in self.t_nodes],
            "is_exact": self.is_exact,
            "approximation_ratio": self.approximation_ratio,
            "stats": _sanitize_stats_value(self.stats),
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialise :meth:`to_dict` (non-JSON stats values are stringified)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "DDSResult":
        """Rebuild a result from a :meth:`to_dict` document.

        The inverse of :meth:`to_dict` for results whose node labels are
        JSON-native (see :func:`json_native_label`) — exactly the results
        the persistent store persists.  Accepts every schema version in
        :data:`READABLE_SCHEMA_VERSIONS`; anything else — unknown versions,
        missing keys, node lists disagreeing with the recorded sizes —
        raises :class:`~repro.exceptions.StoreError`, which the store treats
        as corruption rather than a crash.
        """
        if not isinstance(document, dict):
            raise StoreError(f"result document must be a JSON object, got {type(document).__name__}")
        version = document.get("schema_version")
        if version not in READABLE_SCHEMA_VERSIONS:
            raise StoreError(
                f"unsupported result schema_version {version!r} "
                f"(readable: {', '.join(map(str, READABLE_SCHEMA_VERSIONS))})"
            )
        try:
            result = cls(
                s_nodes=list(document["s_nodes"]),
                t_nodes=list(document["t_nodes"]),
                density=float(document["density"]),
                edge_count=int(document["edge_count"]),
                method=str(document["method"]),
                is_exact=bool(document["is_exact"]),
                approximation_ratio=float(document["approximation_ratio"]),
                stats=dict(document["stats"]),
            )
            s_size = int(document["s_size"])
            t_size = int(document["t_size"])
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(f"malformed result document: {error!r}")
        if result.s_size != s_size or result.t_size != t_size:
            raise StoreError(
                "result document is internally inconsistent: node lists do not "
                "match the recorded s_size/t_size"
            )
        return result

    @classmethod
    def from_json(cls, text: str) -> "DDSResult":
        """Parse a :meth:`to_json` string back into a result (see :meth:`from_dict`)."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise StoreError(f"result document is not valid JSON: {error}")
        return cls.from_dict(document)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DDSResult(method={self.method!r}, density={self.density:.4f}, "
            f"|S|={self.s_size}, |T|={self.t_size}, edges={self.edge_count})"
        )


@dataclass
class FixedRatioOutcome:
    """Outcome of maximising the ratio-``a`` surrogate objective.

    ``lower``/``upper`` bracket the surrogate optimum ``val(a)``;
    ``best_s`` / ``best_t`` (graph node indices) are the extracted pair with
    the highest *true* density, while ``last_s`` / ``last_t`` are the pair
    extracted at the highest successful guess — the (near-)maximiser of the
    surrogate, which the divide-and-conquer ratio-skipping lemma needs —
    together with its surrogate value ``last_surrogate``.  ``flow_calls``,
    ``networks_built`` / ``networks_reused`` (one search uses exactly one
    network: freshly built, or served by a
    :class:`~repro.core.network_cache.NetworkCache`) and ``network_nodes``
    feed experiments E6/E7 and the flow-engine regression tests;
    ``warm_starts_used`` / ``cold_starts`` split ``flow_calls`` by whether
    the solver continued from the previous guess's residual flow (see the
    stats glossary in :mod:`repro.flow.engine`).
    """

    ratio: float
    lower: float
    upper: float
    best_s: list[int]
    best_t: list[int]
    best_density: float
    flow_calls: int
    networks_built: int = 0
    networks_reused: int = 0
    warm_starts_used: int = 0
    cold_starts: int = 0
    last_s: list[int] = field(default_factory=list)
    last_t: list[int] = field(default_factory=list)
    last_surrogate: float = 0.0
    network_nodes: list[int] = field(default_factory=list)
    network_arcs: list[int] = field(default_factory=list)

    @property
    def found_pair(self) -> bool:
        """Whether any pair beating the initial lower bound was extracted."""
        return bool(self.best_s) and bool(self.best_t)

    @property
    def found_maximiser(self) -> bool:
        """Whether a surrogate (near-)maximiser was extracted."""
        return bool(self.last_s) and bool(self.last_t)
