"""Candidate-ratio machinery for the exact DDS algorithms.

The DDS optimum ``(S*, T*)`` has ``|S*|/|T*| = i/j`` for some integers
``1 <= i, j <= n``.  The baseline exact algorithm examines every distinct
candidate ratio; the divide-and-conquer algorithm recursively subdivides the
ratio interval ``[1/n, n]`` and needs to count (and, near the leaves,
enumerate) the candidate ratios falling inside an interval.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterator

from repro.utils.validation import require, require_positive, require_positive_int


def all_candidate_ratios(n: int) -> list[Fraction]:
    """All distinct ratios ``i/j`` with ``1 <= i, j <= n``, ascending.

    The count is ``O(n^2)`` (asymptotically ``(6/pi^2) n^2`` after reduction),
    which is why the baseline exact algorithm does not scale and the paper's
    divide-and-conquer strategy matters.
    """
    require_positive_int(n, "n")
    ratios = {Fraction(i, j) for i in range(1, n + 1) for j in range(1, n + 1)}
    return sorted(ratios)


def count_candidate_ratios_in_interval(low: float, high: float, n: int) -> int:
    """Number of pairs ``(i, j)`` with ``low <= i/j <= high`` and ``1 <= i, j <= n``.

    Counting pairs (rather than distinct reduced fractions) is an upper bound
    on the number of distinct ratios, which is all the divide-and-conquer
    recursion needs to decide whether an interval is a leaf.
    """
    require_positive(high, "high")
    require(low > 0, "low must be positive")
    require(low <= high, "low must not exceed high")
    require_positive_int(n, "n")
    total = 0
    for j in range(1, n + 1):
        i_low = math.ceil(low * j - 1e-12)
        i_high = math.floor(high * j + 1e-12)
        i_low = max(i_low, 1)
        i_high = min(i_high, n)
        if i_high >= i_low:
            total += i_high - i_low + 1
    return total


def candidate_ratios_in_interval(low: float, high: float, n: int) -> list[Fraction]:
    """Distinct candidate ratios ``i/j`` inside ``[low, high]``, ascending."""
    require_positive(high, "high")
    require(low > 0, "low must be positive")
    require(low <= high, "low must not exceed high")
    require_positive_int(n, "n")
    ratios: set[Fraction] = set()
    for j in range(1, n + 1):
        i_low = max(math.ceil(low * j - 1e-12), 1)
        i_high = min(math.floor(high * j + 1e-12), n)
        for i in range(i_low, i_high + 1):
            ratios.add(Fraction(i, j))
    return sorted(ratios)


def geometric_ratio_grid(n: int, epsilon: float) -> list[float]:
    """Geometric grid covering ``[1/n, n]`` with multiplicative step ``1 + epsilon``.

    Every possible optimal ratio ``a* in [1/n, n]`` is within a multiplicative
    factor ``(1 + epsilon)`` of some grid point, which is exactly what the
    peeling approximation needs for its ``2 * sqrt(1 + epsilon)`` guarantee.
    The grid always contains 1.0 and both endpoints.
    """
    require_positive_int(n, "n")
    require_positive(epsilon, "epsilon")
    low = 1.0 / n
    high = float(n)
    grid = [1.0]
    value = 1.0
    while value > low:
        value /= 1.0 + epsilon
        grid.append(max(value, low))
    value = 1.0
    while value < high:
        value *= 1.0 + epsilon
        grid.append(min(value, high))
    return sorted(set(grid))


def iter_ratio_blocks(ratios: list[Fraction], block_size: int) -> Iterator[list[Fraction]]:
    """Yield consecutive blocks of candidate ratios (used by benchmark sweeps)."""
    require_positive_int(block_size, "block_size")
    for start in range(0, len(ratios), block_size):
        yield ratios[start : start + block_size]
