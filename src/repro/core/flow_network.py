"""Reduction from the fixed-ratio density decision to minimum s-t cut.

For a sub-problem with edge set ``E'`` (``m' = |E'|``), a ratio ``a > 0`` and
a guess ``g >= 0`` we build the following network:

* a source ``s`` and a sink ``t``;
* an *out-copy* node ``o_u`` for every S-candidate ``u`` and an *in-copy*
  node ``i_v`` for every T-candidate ``v``;
* arcs ``s -> o_u`` with capacity ``2 * dout'(u)`` (out-degree inside ``E'``);
* arcs ``o_u -> i_v`` with capacity ``2`` for every edge ``(u, v) ∈ E'``;
* arcs ``o_u -> t`` with capacity ``g / sqrt(a)``;
* arcs ``i_v -> t`` with capacity ``g * sqrt(a)``.

**Correctness.**  Identify a cut with indicator vectors ``x`` (``x_u = 1``
iff ``o_u`` is on the source side) and ``y`` (likewise for ``i_v``).  The cut
capacity is

    sum_u 2*dout'(u)*(1 - x_u)  +  sum_{(u,v)} 2*x_u*(1 - y_v)
        +  (g/sqrt(a)) * sum_u x_u  +  (g*sqrt(a)) * sum_v y_v.

Using the per-edge identity ``(1 - x_u) + x_u*(1 - y_v) = 1 - x_u*y_v`` the
first two terms collapse to ``2m' - 2|E'(S,T)|`` where ``S = {u : x_u = 1}``
and ``T = {v : y_v = 1}``, so

    cut(x, y) = 2m' - [ 2|E'(S,T)| - g*(|S|/sqrt(a) + sqrt(a)*|T|) ].

Hence ``mincut = 2m' - max_{S,T} F_a,g(S,T)`` with
``F = 2|E'| - 2g*D_a`` and ``D_a`` the surrogate denominator.  Because
``F(∅, ∅) = 0`` we always have ``mincut <= 2m'``, and ``mincut < 2m'`` holds
iff some pair has surrogate density ``|E'(S,T)| / D_a(S,T) > g``.  The source
side of a minimum cut then exhibits such a pair.  Since
``D_a >= sqrt(|S||T|)`` (AM–GM), any exhibited pair also has *true* density
``> g`` — for every ratio ``a`` — while for ``a = |S*|/|T*|`` the test is
tight, which is what makes the all-ratios sweep exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError
from repro.flow.network import FlowNetwork

try:  # optional acceleration: retune's penalty sweep vectorises under numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None

#: Slack used when comparing a min-cut value against ``2m'``; the comparison
#: involves sums of ``O(m)`` floats so the tolerance scales with ``m``.
CUT_RELATIVE_TOLERANCE = 1e-9


@dataclass
class DecisionNetwork:
    """A built decision network plus the bookkeeping to read the answer back.

    Only the ``o_u -> t`` and ``i_v -> t`` penalty arcs depend on the probe
    parameters ``(ratio, guess)``; their arc indices are recorded so that
    :meth:`retune` can update the capacities in place and reset the residual
    state instead of rebuilding the whole network for every binary-search
    guess (O(|S| + |T| + m') instead of a full Python-object rebuild).
    """

    network: FlowNetwork
    source: int
    sink: int
    s_nodes: list[int]  # graph indices, aligned with network nodes 2..2+|S|
    t_nodes: list[int]  # graph indices, aligned with network nodes 2+|S|..
    total_capacity: float  # the 2m' reference value
    s_penalty_arcs: list[int] = field(default_factory=list)  # o_u -> t arcs
    t_penalty_arcs: list[int] = field(default_factory=list)  # i_v -> t arcs

    @property
    def num_nodes(self) -> int:
        """Number of network nodes (for instrumentation)."""
        return self.network.num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of stored network arcs (for instrumentation)."""
        return self.network.num_arcs

    def extract_pair(self, source_side: list[int]) -> tuple[list[int], list[int]]:
        """Map the source side of a cut back to graph-index sets ``(S, T)``."""
        s_offset = 2
        t_offset = 2 + len(self.s_nodes)
        side = set(source_side)
        s_selected = [
            self.s_nodes[position]
            for position in range(len(self.s_nodes))
            if (s_offset + position) in side
        ]
        t_selected = [
            self.t_nodes[position]
            for position in range(len(self.t_nodes))
            if (t_offset + position) in side
        ]
        return s_selected, t_selected

    def clone(self) -> "DecisionNetwork":
        """Deep copy: independent flow network, shared immutable parameters.

        The clone can be patched and solved without disturbing this
        network's residual state — the seed step of the incremental
        ``top_k`` reuse path.  The lazily built edge-arc map is copied when
        present (it is cheap and the clone's topology is identical).
        """
        twin = DecisionNetwork(
            network=self.network.clone(),
            source=self.source,
            sink=self.sink,
            s_nodes=list(self.s_nodes),
            t_nodes=list(self.t_nodes),
            total_capacity=self.total_capacity,
            s_penalty_arcs=list(self.s_penalty_arcs),
            t_penalty_arcs=list(self.t_penalty_arcs),
        )
        cached = getattr(self, "_edge_arc_map", None)
        if cached is not None:
            twin._edge_arc_map = dict(cached)
        return twin

    def edge_arc_map(self) -> dict[tuple[int, int], int]:
        """``(u, v) -> forward arc index`` for the ``o_u -> i_v`` edge arcs.

        Keys are *graph* indices.  Built lazily by replaying the construction
        order of :func:`build_decision_network` (edge arcs are appended after
        the ``4|S| + 2|T|`` candidate arcs) and maintained by the incremental
        patcher across arc appends; entries for deleted edges are kept at
        capacity zero so a later re-insertion reuses the stale arc instead of
        growing the network.
        """
        cached = getattr(self, "_edge_arc_map", None)
        if cached is None:
            s_offset = 2
            t_offset = 2 + len(self.s_nodes)
            first = 4 * len(self.s_nodes) + 2 * len(self.t_nodes)
            targets = self.network.arc_targets
            cached = {}
            for arc in range(first, self.network.num_arcs, 2):
                # The reverse twin's target is the forward arc's tail.
                u = self.s_nodes[targets[arc + 1] - s_offset]
                v = self.t_nodes[targets[arc] - t_offset]
                cached[(u, v)] = arc
            self._edge_arc_map = cached
        return cached

    def source_arc(self, s_position: int) -> int:
        """Forward arc index of the ``s -> o_u`` arc for S position ``s_position``.

        The construction adds each S candidate's source arc immediately
        before its penalty arc, so the index is recoverable from the recorded
        penalty arcs without storing a third list.
        """
        return self.s_penalty_arcs[s_position] - 2

    def retune(self, ratio: float, guess: float, warm_start: bool = False) -> None:
        """Re-parameterise the network for a new ``(ratio, guess)`` in place.

        Updates the guess-dependent penalty-arc capacities, leaving the
        topology (and hence the CSR index) untouched.

        With ``warm_start=False`` (the historical behaviour) the residual
        state is reset, so the next solve starts from zero flow and the
        network is observationally identical to one freshly built by
        :func:`build_decision_network` with the same parameters: same node
        layout, same arc order, bit-identical capacities.

        With ``warm_start=True`` the flow of the previous solve is kept as
        the starting point of the next one: each penalty arc's flow is
        clamped to its new capacity and any clamped excess is pushed back to
        the source (:meth:`~repro.flow.network.FlowNetwork.return_excess`),
        leaving a *valid feasible flow* under the new capacities.  When the
        guess moves up the bracket the penalty capacities only grow, so the
        previous flow is untouched and the solver merely tops it up; when
        the guess moves down, the clamp-and-return pass shrinks the flow
        just enough to stay feasible.  Either way the subsequent max-flow is
        exact — warm starting changes the amount of *work*, never the
        answer.

        Both paths run their penalty-arc sweep as bulk numpy operations on
        the network's zero-copy views when numpy is importable (the
        elementwise arithmetic is identical to the scalar loop, so residual
        states are bit-identical either way); without numpy the original
        per-arc loop runs.
        """
        if ratio <= 0:
            raise AlgorithmError(f"ratio must be > 0, got {ratio}")
        if guess < 0:
            raise AlgorithmError(f"guess must be >= 0, got {guess}")
        root = math.sqrt(ratio)
        s_penalty = guess / root
        t_penalty = guess * root
        network = self.network
        if _np is not None:
            self._retune_vectorised(s_penalty, t_penalty, warm_start)
            return
        if not warm_start:
            for arc_index in self.s_penalty_arcs:
                network.set_capacity(arc_index, s_penalty)
            for arc_index in self.t_penalty_arcs:
                network.set_capacity(arc_index, t_penalty)
            network.reset_flow()
            return
        s_offset = 2
        t_offset = 2 + len(self.s_nodes)
        excess: list[tuple[int, float]] = []
        for position, arc_index in enumerate(self.s_penalty_arcs):
            overflow = network.set_capacity_preserving_flow(arc_index, s_penalty)
            if overflow > 0.0:
                excess.append((s_offset + position, overflow))
        for position, arc_index in enumerate(self.t_penalty_arcs):
            overflow = network.set_capacity_preserving_flow(arc_index, t_penalty)
            if overflow > 0.0:
                excess.append((t_offset + position, overflow))
        if excess:
            network.return_excess(excess, self.source)

    def _retune_vectorised(self, s_penalty: float, t_penalty: float, warm_start: bool) -> None:
        """Bulk-array implementation of the penalty sweep (numpy present).

        Elementwise it performs exactly the arithmetic of
        :meth:`FlowNetwork.set_capacity` /
        :meth:`FlowNetwork.set_capacity_preserving_flow` — same operands,
        same operations, no re-association — so the resulting residual
        state is bit-identical to the scalar loop's.  Only the clamp
        *detection* is vectorised; returning the clamped excess still goes
        through the generic :meth:`FlowNetwork.return_excess` walk, in the
        same (node, amount) order the scalar loop would produce.
        """
        network = self.network
        _, _, _, caps, _, base = network.numpy_csr()
        arcs = self._penalty_arc_index()
        penalties = _np.empty(arcs.shape[0], dtype=_np.float64)
        penalties[: len(self.s_penalty_arcs)] = s_penalty
        penalties[len(self.s_penalty_arcs) :] = t_penalty
        base[arcs] = penalties
        if not warm_start:
            # reset_flow() copies base over every capacity, so the scalar
            # path's interim cap/twin writes are subsumed by the reset.
            network.reset_flow()
            return
        flows = caps[arcs + 1]
        fits = flows <= penalties
        caps[arcs] = _np.where(fits, penalties - flows, 0.0)
        caps[arcs + 1] = _np.where(fits, flows, penalties)
        overflow = flows - penalties
        clamped = _np.flatnonzero(overflow > 0.0)
        if clamped.size:
            nodes = self._penalty_node_index()[clamped]
            network.return_excess(
                list(zip(nodes.tolist(), overflow[clamped].tolist())), self.source
            )

    def _penalty_arc_index(self) -> "object":
        """The S- then T-penalty arc indices as one cached int64 array."""
        cached = getattr(self, "_np_penalty_arcs", None)
        if cached is None:
            cached = _np.asarray(self.s_penalty_arcs + self.t_penalty_arcs, dtype=_np.int64)
            self._np_penalty_arcs = cached
        return cached

    def _penalty_node_index(self) -> "object":
        """Network node of each penalty arc's tail, aligned with :meth:`_penalty_arc_index`."""
        cached = getattr(self, "_np_penalty_nodes", None)
        if cached is None:
            s_offset = 2
            t_offset = 2 + len(self.s_nodes)
            cached = _np.concatenate(
                [
                    s_offset + _np.arange(len(self.s_penalty_arcs), dtype=_np.int64),
                    t_offset + _np.arange(len(self.t_penalty_arcs), dtype=_np.int64),
                ]
            )
            self._np_penalty_nodes = cached
        return cached


def build_decision_network(
    subproblem: STSubproblem, ratio: float, guess: float
) -> DecisionNetwork:
    """Build the min-cut decision network for ``(ratio, guess)``.

    Node layout: ``0 = source``, ``1 = sink``, then one node per S candidate
    (in ``subproblem.s_candidates`` order), then one node per T candidate.
    """
    if ratio <= 0:
        raise AlgorithmError(f"ratio must be > 0, got {ratio}")
    if guess < 0:
        raise AlgorithmError(f"guess must be >= 0, got {guess}")

    s_nodes = subproblem.s_candidates
    t_nodes = subproblem.t_candidates
    s_position = {u: index for index, u in enumerate(s_nodes)}
    t_position = {v: index for index, v in enumerate(t_nodes)}

    network = FlowNetwork(2 + len(s_nodes) + len(t_nodes))
    source, sink = 0, 1
    s_offset = 2
    t_offset = 2 + len(s_nodes)

    out_degree = subproblem.out_degrees()
    root = math.sqrt(ratio)
    s_penalty = guess / root
    t_penalty = guess * root

    total_capacity = 0.0
    s_penalty_arcs: list[int] = []
    t_penalty_arcs: list[int] = []
    for u in s_nodes:
        capacity = 2.0 * out_degree[u]
        network.add_edge(source, s_offset + s_position[u], capacity)
        total_capacity += capacity
        s_penalty_arcs.append(network.add_edge(s_offset + s_position[u], sink, s_penalty))
    for v in t_nodes:
        t_penalty_arcs.append(network.add_edge(t_offset + t_position[v], sink, t_penalty))
    for u, v in subproblem.edges:
        network.add_edge(s_offset + s_position[u], t_offset + t_position[v], 2.0)

    return DecisionNetwork(
        network=network,
        source=source,
        sink=sink,
        s_nodes=list(s_nodes),
        t_nodes=list(t_nodes),
        total_capacity=total_capacity,
        s_penalty_arcs=s_penalty_arcs,
        t_penalty_arcs=t_penalty_arcs,
    )


def decision_network_arc_count(subproblem: STSubproblem) -> int:
    """Stored arc count of the network :func:`build_decision_network` would build.

    Derived from the construction without building anything: one edge per S
    candidate to the source, one penalty edge per S and per T candidate, one
    edge per sub-problem edge — each stored with its residual twin.  The
    batching gate uses this to decide, before any network exists, whether a
    family of fixed-ratio searches over ``subproblem`` should be stacked
    (the count is ratio-independent: only capacities vary with the ratio).
    """
    return 2 * (
        2 * len(subproblem.s_candidates)
        + len(subproblem.t_candidates)
        + len(subproblem.edges)
    )


def decision_cut_is_improving(cut_value: float, total_capacity: float) -> bool:
    """Whether ``cut_value`` is strictly below ``2m'`` beyond float tolerance."""
    slack = CUT_RELATIVE_TOLERANCE * max(total_capacity, 1.0)
    return cut_value < total_capacity - slack
