"""Setuptools shim.

The canonical metadata lives in ``setup.cfg``; this file exists so that
legacy editable installs (``pip install -e .`` with older setuptools/pip
stacks that lack the ``wheel`` package, as in the offline evaluation
environment) keep working.
"""

from setuptools import setup

setup()
