"""Setuptools shim.

This file exists so that legacy editable installs (``pip install -e .`` with
older setuptools/pip stacks that lack the ``wheel`` package, as in the
offline evaluation environment) keep working.

Extras
------
``vector``
    numpy, enabling the vectorised ``numpy-push-relabel`` flow backend and
    the bulk-array fast paths in the retune/excess-return machinery.  The
    package is fully functional without it: the solver registry simply does
    not list the vectorised backend and ``flow_solver="auto"`` resolves to
    ``dinic`` everywhere.
"""

from setuptools import setup

setup(
    extras_require={
        "vector": ["numpy>=1.22"],
    },
)
