"""E3 — efficiency of the approximation algorithms (paper analogue: approx-runtime figure).

PeelApprox (the ratio-sweep peeling baseline), IncApprox (full skyline
decomposition), and CoreApprox (the paper's algorithm) on the medium and
large datasets.  Expected shape: CoreApprox is the fastest, IncApprox sits in
between, and the gap over PeelApprox widens with graph size.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table, run_method_on_dataset
from repro.datasets.registry import dataset_names, load_dataset

MEDIUM_DATASETS = dataset_names("medium")
LARGE_DATASETS = ["web-large", "planted-large"]
_rows: list[dict] = []


@pytest.mark.parametrize("dataset", MEDIUM_DATASETS)
@pytest.mark.parametrize("method", ["peel-approx", "inc-approx", "core-approx"])
def test_e3_medium(benchmark, dataset, method):
    graph = load_dataset(dataset)
    record = benchmark.pedantic(
        lambda: run_method_on_dataset("E3", dataset, graph, method), rounds=1, iterations=1
    )
    _rows.append(record.row())
    assert record.result.density > 0


@pytest.mark.parametrize("dataset", LARGE_DATASETS)
@pytest.mark.parametrize("method", ["peel-approx", "core-approx"])
def test_e3_large(benchmark, dataset, method):
    graph = load_dataset(dataset)
    record = benchmark.pedantic(
        lambda: run_method_on_dataset("E3", dataset, graph, method), rounds=1, iterations=1
    )
    _rows.append(record.row())
    assert record.result.density > 0


def test_e3_emit_table(benchmark):
    text = benchmark.pedantic(
        lambda: format_table(_rows, title="E3: approximation-algorithm efficiency"),
        rounds=1,
        iterations=1,
    )
    emit(text)
    assert _rows
