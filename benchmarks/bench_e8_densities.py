"""E8 — densities and sizes of the discovered subgraphs (paper analogue: the
table reporting rho_opt, |S*| and |T*| per dataset).

For the small datasets we report the exact optimum; for medium datasets the
CoreApprox answer (as the paper does when exact algorithms cannot finish).
"""

from __future__ import annotations

from conftest import emit

from repro.bench.harness import format_table
from repro.session import DDSSession
from repro.datasets.registry import dataset_names, load_dataset


def _density_rows() -> list[dict]:
    rows = []
    for dataset in dataset_names("small"):
        session = DDSSession(load_dataset(dataset))
        exact = session.densest_subgraph("core-exact")
        approx = session.densest_subgraph("core-approx")
        rows.append(
            {
                "dataset": dataset,
                "rho_exact": round(exact.density, 4),
                "|S*|": exact.s_size,
                "|T*|": exact.t_size,
                "S/T ratio": round(exact.ratio, 3),
                "rho_core_approx": round(approx.density, 4),
            }
        )
    for dataset in dataset_names("medium"):
        graph = load_dataset(dataset)
        approx = DDSSession(graph).densest_subgraph("core-approx")
        rows.append(
            {
                "dataset": dataset,
                "rho_exact": "-",
                "|S*|": approx.s_size,
                "|T*|": approx.t_size,
                "S/T ratio": round(approx.ratio, 3),
                "rho_core_approx": round(approx.density, 4),
            }
        )
    return rows


def test_e8_densities(benchmark):
    rows = benchmark.pedantic(_density_rows, rounds=1, iterations=1)
    emit(format_table(rows, title="E8: discovered densest-subgraph densities and sizes"))
    assert rows
