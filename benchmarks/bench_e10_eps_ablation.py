"""E10 — ablation: PeelApprox ratio-grid resolution (epsilon sweep).

The peeling baseline's grid step trades runtime (number of peels) against its
guarantee ``2*sqrt(1+eps)``.  The sweep shows the practical effect: coarser
grids are proportionally faster while the achieved density barely moves —
one of the reasons the paper's CoreApprox (which needs no grid at all) is the
more attractive algorithm.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table
from repro.session import DDSSession
from repro.datasets.registry import load_dataset
from repro.utils.timer import time_call

EPSILONS = (0.1, 0.25, 0.5, 1.0, 2.0)
DATASET = "amazon-medium"
_rows: list[dict] = []


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_e10_epsilon_sweep(benchmark, epsilon):
    graph = load_dataset(DATASET)
    result, seconds = time_call(
        lambda: DDSSession(graph).densest_subgraph("peel-approx", epsilon=epsilon)
    )
    benchmark.pedantic(
        lambda: DDSSession(graph).densest_subgraph("peel-approx", epsilon=epsilon),
        rounds=1,
        iterations=1,
    )
    _rows.append(
        {
            "dataset": DATASET,
            "epsilon": epsilon,
            "ratios_in_grid": result.stats["ratios_examined"],
            "density": round(result.density, 4),
            "guarantee": round(result.approximation_ratio, 3),
            "seconds": round(seconds, 3),
        }
    )
    assert result.density > 0


def test_e10_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E10: PeelApprox epsilon (ratio-grid) ablation"))
    # Coarser grids never use more ratios.
    ordered = sorted(_rows, key=lambda row: row["epsilon"])
    for previous, current in zip(ordered, ordered[1:]):
        assert current["ratios_in_grid"] <= previous["ratios_in_grid"]
