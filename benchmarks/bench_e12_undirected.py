"""E12 — directed vs. undirected densest subgraph (paper motivation check).

For each small dataset, compare the exact DDS against the exact undirected
densest subgraph computed on the same graph with directions ignored.  The
point of the comparison is qualitative: the undirected answer is a single
vertex set with no role separation, and its directed density (reading its
edges in the original direction, with S = T = H) is generally well below the
true directed optimum.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table
from repro.session import DDSSession
from repro.core.density import directed_density
from repro.datasets.registry import dataset_names, load_dataset
from repro.undirected import goldberg_exact

_rows: list[dict] = []


@pytest.mark.parametrize("dataset", dataset_names("small"))
def test_e12_directed_vs_undirected(benchmark, dataset):
    graph = load_dataset(dataset)
    directed = DDSSession(graph).densest_subgraph("core-exact")
    undirected = benchmark.pedantic(lambda: goldberg_exact(graph), rounds=1, iterations=1)
    undirected_as_directed = directed_density(graph, undirected.nodes, undirected.nodes)
    _rows.append(
        {
            "dataset": dataset,
            "rho_directed_opt": round(directed.density, 4),
            "undirected_edge_density": round(undirected.density, 4),
            "undirected_set_as_(S=T)_directed_density": round(undirected_as_directed, 4),
            "|S*|": directed.s_size,
            "|T*|": directed.t_size,
            "|H_undirected|": undirected.size,
        }
    )
    # The directed optimum can never be beaten by reading the undirected
    # answer as a directed pair.
    assert undirected_as_directed <= directed.density + 1e-9


def test_e12_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E12: directed DDS vs undirected densest subgraph"))
    assert _rows
