"""E2 — efficiency of the exact algorithms (paper analogue: exact-runtime figure).

FlowExact (the O(n^2)-ratio baseline) is run only on the two tiniest
datasets; DCExact and CoreExact run on every small dataset.  The expected
shape: CoreExact <= DCExact << FlowExact, with the gap growing with graph
size — the paper's headline result.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table, run_method_on_dataset
from repro.session import DDSSession
from repro.datasets.registry import dataset_names, load_dataset

BASELINE_DATASETS = ["foodweb-tiny", "social-tiny"]
FAST_EXACT_METHODS = ["dc-exact", "core-exact"]

_rows: list[dict] = []


@pytest.mark.parametrize("dataset", BASELINE_DATASETS)
def test_e2_flow_exact(benchmark, dataset):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: DDSSession(graph).densest_subgraph("flow-exact"), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": "flow-exact",
            "density": round(result.density, 4),
            "flow_calls": result.stats["flow_calls"],
        }
    )
    assert result.is_exact


@pytest.mark.parametrize("dataset", dataset_names("small"))
@pytest.mark.parametrize("method", FAST_EXACT_METHODS)
def test_e2_dc_and_core_exact(benchmark, dataset, method):
    graph = load_dataset(dataset)
    record = benchmark.pedantic(
        lambda: run_method_on_dataset("E2", dataset, graph, method), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": method,
            "density": round(record.result.density, 4),
            "flow_calls": record.result.stats["flow_calls"],
            "seconds": round(record.seconds, 3),
        }
    )
    assert record.result.is_exact


def test_e2_emit_table(benchmark):
    text = benchmark.pedantic(
        lambda: format_table(_rows, title="E2: exact-algorithm efficiency (runtime via pytest-benchmark)"),
        rounds=1,
        iterations=1,
    )
    emit(text)
    assert _rows
