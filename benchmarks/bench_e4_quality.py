"""E4 — approximation quality (paper analogue: the "accuracy" figure).

For every small dataset the reference is the exact optimum; for medium
datasets the reference is the best answer any algorithm finds.  The paper's
observation — the actual approximation ratios of both CoreApprox and
PeelApprox are far better than the worst-case factor 2, usually close to 1 —
should be visible in the printed table.
"""

from __future__ import annotations

from conftest import emit

from repro.bench.harness import format_table
from repro.bench.workloads import quality_reference_density
from repro.session import DDSSession
from repro.datasets.registry import dataset_names, load_dataset

QUALITY_DATASETS = dataset_names("small") + ["amazon-medium", "planted-medium"]


def _quality_rows() -> list[dict]:
    rows = []
    for dataset in QUALITY_DATASETS:
        graph = load_dataset(dataset)
        reference, reference_method = quality_reference_density(graph)
        row = {"dataset": dataset, "reference": round(reference, 4), "ref_method": reference_method}
        for method in ("core-approx", "peel-approx"):
            result = DDSSession(graph).densest_subgraph(method)
            row[f"{method}_ratio"] = round(result.density / reference, 4) if reference else 0.0
        rows.append(row)
    return rows


def test_e4_quality(benchmark):
    rows = benchmark.pedantic(_quality_rows, rounds=1, iterations=1)
    emit(format_table(rows, title="E4: approximation quality (density / reference)"))
    # Worst-case guarantee: the reported ratio never drops below 1/2 of the
    # reference (with a small numerical slack).
    for row in rows:
        assert row["core-approx_ratio"] >= 0.5 - 1e-6
        assert row["peel-approx_ratio"] >= 0.4 - 1e-6
