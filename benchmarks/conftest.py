"""Shared fixtures/helpers for the experiment benchmarks.

Every module in this directory regenerates one table or figure of the
evaluation (see DESIGN.md §4 and EXPERIMENTS.md).  Timing numbers come from
pytest-benchmark; the paper-style rows/series are printed to stdout, so run
with ``pytest benchmarks/ --benchmark-only -s`` to see them (they are also
appended to ``benchmarks/results.txt``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_FILE = Path(__file__).resolve().parent / "results.txt"


def emit(text: str) -> None:
    """Print a paper-style table/series and append it to benchmarks/results.txt."""
    print("\n" + text + "\n")
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _reset_results_file():
    """Start each benchmark session with a fresh results file."""
    RESULTS_FILE.write_text("", encoding="utf-8")
    yield
