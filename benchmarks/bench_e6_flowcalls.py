"""E6 — number of max-flow computations / ratios examined (paper analogue:
the table explaining *why* the divide-and-conquer wins).

FlowExact performs one full binary search per candidate ratio (Theta(n^2)
searches); DCExact examines only the ratios its recursion cannot skip;
CoreExact additionally shrinks every network.  The printed table reports, per
small dataset: candidate-ratio count, ratios actually examined, total
min-cut computations, and the number of decision networks actually built
(with the retune path: one per fixed-ratio search, not one per min-cut).

Besides the pytest-benchmark entry points this module doubles as a CI smoke
check::

    PYTHONPATH=src python benchmarks/bench_e6_flowcalls.py --smoke

which fails (exit code 1) whenever the flow-call counts regress past the
recorded bounds or an algorithm stops building exactly one network per
fixed-ratio search.
"""

from __future__ import annotations

import sys

import pytest
from conftest import emit

from repro.bench.baselines import SEED_FLOW_CALLS
from repro.bench.harness import format_table
from repro.core.api import densest_subgraph
from repro.core.ratio import all_candidate_ratios
from repro.datasets.registry import dataset_names, load_dataset

_rows: list[dict] = []

BASELINE_DATASETS = ["foodweb-tiny", "social-tiny"]

#: Flow-call upper bounds recorded from the seed implementation; the smoke
#: run fails when an algorithm needs more min-cuts than the seed did.
SMOKE_FLOW_CALL_BOUNDS = SEED_FLOW_CALLS


@pytest.mark.parametrize("dataset", BASELINE_DATASETS)
def test_e6_flow_exact_counts(benchmark, dataset):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: densest_subgraph(graph, method="flow-exact"), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": "flow-exact",
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
            "networks_built": result.stats["networks_built"],
        }
    )


@pytest.mark.parametrize("dataset", dataset_names("small"))
@pytest.mark.parametrize("method", ["dc-exact", "core-exact"])
def test_e6_dc_core_counts(benchmark, dataset, method):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: densest_subgraph(graph, method=method), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": method,
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
            "networks_built": result.stats["networks_built"],
            "intervals_pruned": result.stats["intervals_pruned"],
        }
    )


def test_e6_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E6: ratios examined and max-flow calls per exact algorithm"))
    # The divide-and-conquer algorithms must examine far fewer ratios than the
    # candidate-ratio count on every dataset.
    for row in _rows:
        if row["method"] != "flow-exact":
            assert row["ratios_examined"] < row["candidate_ratios"]


def run_smoke() -> int:
    """Fast flow-call regression gate (used by CI; no pytest required)."""
    failures: list[str] = []
    rows: list[dict] = []
    for (dataset, method), bound in SMOKE_FLOW_CALL_BOUNDS.items():
        graph = load_dataset(dataset)
        result = densest_subgraph(graph, method=method)
        stats = result.stats
        rows.append(
            {
                "dataset": dataset,
                "method": method,
                "flow_calls": stats["flow_calls"],
                "seed_bound": bound,
                "networks_built": stats["networks_built"],
                "fixed_ratio_searches": stats["fixed_ratio_searches"],
            }
        )
        if stats["flow_calls"] > bound:
            failures.append(
                f"{dataset}/{method}: flow_calls {stats['flow_calls']} > seed bound {bound}"
            )
        if stats["networks_built"] != stats["fixed_ratio_searches"]:
            failures.append(
                f"{dataset}/{method}: networks_built {stats['networks_built']} != "
                f"fixed_ratio_searches {stats['fixed_ratio_searches']}"
            )
    print(format_table(rows, title="E6 smoke: flow-call regression gate"))
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: no flow-call regressions")
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    print("usage: bench_e6_flowcalls.py --smoke  (or run under pytest for the full table)")
    sys.exit(2)
