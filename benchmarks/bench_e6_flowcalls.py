"""E6 — number of max-flow computations / ratios examined (paper analogue:
the table explaining *why* the divide-and-conquer wins).

FlowExact performs one full binary search per candidate ratio (Theta(n^2)
searches); DCExact examines only the ratios its recursion cannot skip;
CoreExact additionally shrinks every network.  The printed table reports, per
small dataset: candidate-ratio count, ratios actually examined, and total
min-cut computations.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table
from repro.core.api import densest_subgraph
from repro.core.ratio import all_candidate_ratios
from repro.datasets.registry import dataset_names, load_dataset

_rows: list[dict] = []

BASELINE_DATASETS = ["foodweb-tiny", "social-tiny"]


@pytest.mark.parametrize("dataset", BASELINE_DATASETS)
def test_e6_flow_exact_counts(benchmark, dataset):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: densest_subgraph(graph, method="flow-exact"), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": "flow-exact",
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
        }
    )


@pytest.mark.parametrize("dataset", dataset_names("small"))
@pytest.mark.parametrize("method", ["dc-exact", "core-exact"])
def test_e6_dc_core_counts(benchmark, dataset, method):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: densest_subgraph(graph, method=method), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": method,
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
            "intervals_pruned": result.stats["intervals_pruned"],
        }
    )


def test_e6_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E6: ratios examined and max-flow calls per exact algorithm"))
    # The divide-and-conquer algorithms must examine far fewer ratios than the
    # candidate-ratio count on every dataset.
    for row in _rows:
        if row["method"] != "flow-exact":
            assert row["ratios_examined"] < row["candidate_ratios"]
