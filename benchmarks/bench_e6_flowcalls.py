"""E6 — number of max-flow computations / ratios examined (paper analogue:
the table explaining *why* the divide-and-conquer wins).

FlowExact performs one full binary search per candidate ratio (Theta(n^2)
searches); DCExact examines only the ratios its recursion cannot skip;
CoreExact additionally shrinks every network.  The printed table reports, per
small dataset: candidate-ratio count, ratios actually examined, total
min-cut computations, and the number of decision networks actually built
(with the retune path at most one per fixed-ratio search, and with the
session network cache strictly fewer: the coarse→refine interior probes
retune the coarse-stage network instead of rebuilding it).

Besides the pytest-benchmark entry points this module doubles as a CI smoke
check::

    PYTHONPATH=src python benchmarks/bench_e6_flowcalls.py --smoke

which fails (exit code 1) whenever the flow-call counts regress past the
recorded bounds, a fixed-ratio search stops using exactly one network
(``networks_built + networks_reused == fixed_ratio_searches``), the
divide-and-conquer methods stop *reusing* probe networks
(``networks_built`` must stay strictly below ``fixed_ratio_searches``), or
warm starting stops paying: on every pinned workload the default
(warm-started) run must use at least one warm start and push **strictly
fewer arcs** than a cold run, while returning the bit-identical subgraph.

The smoke additionally gates the service tier's batch planner: on the mixed
E6-style workload (:func:`repro.bench.workloads.service_mixed_workload`) the
planned execution order must record **strictly more** result + network
cache hits than ``--no-plan`` file order, while both orders return
bit-identical per-query answers.

Finally, when numpy is importable the smoke gates the vectorised flow
backend: on the large E6 workload (dc-exact over ``er-medium``, whose
decision networks sit far above the ``auto`` arc threshold) the
``numpy-push-relabel`` backend must return the **bit-identical** densest
subgraph **in strictly lower wall-clock time** than ``dinic``, and the
``auto`` policy must actually select it (``backend_selections`` > 0) —
plus the batched-solve parity gate: on the small guess-sequence workload
(flow-exact over ``foodweb-tiny``, whose decision networks are each *below*
the auto threshold) the block-diagonal batched auto run must return the
bit-identical subgraph of a batching-disabled auto run with the same
``flow_calls``, while actually batching (``batched_solves`` > 0) onto the
vectorised backend.  Without numpy the gates report themselves skipped
(registry degradation is covered by the test suite).

The **incremental update-parity gate** replays a deterministic edge-update
stream through one session's ``apply_updates``: with certification disabled
every post-delta answer must be bit-identical to a cold session on the
updated graph; with certification enabled densities must agree exactly and
at least one cached answer must survive by certificate.

The **process-pool parity gate** runs the mixed workload through
``BatchExecutor(process_pool=True)`` with one and with two workers: both
process-mode runs must return per-query answers bit-identical to the
thread/serial reference, must actually run in worker processes (no silent
degradation while shared memory is available), and must leave zero
shared-memory segments behind.  Where ``multiprocessing.shared_memory`` is
unavailable the gate reports itself skipped.

The **network-tier parity gate** serves the same mixed workload from two
loopback ``ShardDaemon``s via ``BatchExecutor(remote_hosts=[...])``: the
remote answers must be bit-identical to the local reference with every
lane actually solved remotely and zero sockets left open on either
daemon, and a second run that kills one daemon mid-batch must *still*
return bit-identical answers — the client's retry ladder exhausts, the
lane falls back inline, and the failure is recorded in
``executor_stats`` (``remote_failures``/``degraded_lanes``).

The **deadline anytime gate** pins the robustness layer: a microscopic
``deadline_ms`` must expire into an anytime partial whose certified gap is
finite and whose bounds bracket the true optimum, a generous budget must
return the bit-identical subgraph of a no-deadline run (armed checkpoints
are answer-neutral), and a drained ``ShardDaemon`` must join every worker
thread (``unjoined_threads == 0`` — the shutdown hygiene counter).
"""

from __future__ import annotations

import sys
import time

import pytest
from conftest import emit

from repro.bench.baselines import SEED_FLOW_CALLS
from repro.bench.harness import format_table
from repro.bench.workloads import service_mixed_workload
from repro.core.config import ExactConfig, FlowConfig
from repro.core.ratio import all_candidate_ratios
from repro.datasets.registry import dataset_names, load_dataset
from repro.flow.registry import VECTOR_SOLVER, has_vector_backend
from repro.graph.generators import edge_update_stream
from repro.service import BatchExecutor, payload_answer, plan_batch, process_pool_available
from repro.service import shm as service_shm
from repro.session import DDSSession

_rows: list[dict] = []

BASELINE_DATASETS = ["foodweb-tiny", "social-tiny"]

#: Flow-call upper bounds recorded from the seed implementation; the smoke
#: run fails when an algorithm needs more min-cuts than the seed did.
SMOKE_FLOW_CALL_BOUNDS = SEED_FLOW_CALLS


@pytest.mark.parametrize("dataset", BASELINE_DATASETS)
def test_e6_flow_exact_counts(benchmark, dataset):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: DDSSession(graph).densest_subgraph("flow-exact"), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": "flow-exact",
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
            "networks_built": result.stats["networks_built"],
        }
    )


@pytest.mark.parametrize("dataset", dataset_names("small"))
@pytest.mark.parametrize("method", ["dc-exact", "core-exact"])
def test_e6_dc_core_counts(benchmark, dataset, method):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: DDSSession(graph).densest_subgraph(method), rounds=1, iterations=1
    )
    _rows.append(
        {
            "dataset": dataset,
            "method": method,
            "candidate_ratios": len(all_candidate_ratios(graph.num_nodes)),
            "ratios_examined": result.stats["ratios_examined"],
            "flow_calls": result.stats["flow_calls"],
            "networks_built": result.stats["networks_built"],
            "networks_reused": result.stats["networks_reused"],
            "warm_starts_used": result.stats["warm_starts_used"],
            "arcs_pushed": result.stats["arcs_pushed"],
            "intervals_pruned": result.stats["intervals_pruned"],
        }
    )


def test_e6_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E6: ratios examined and max-flow calls per exact algorithm"))
    # The divide-and-conquer algorithms must examine far fewer ratios than the
    # candidate-ratio count on every dataset.
    for row in _rows:
        if row["method"] != "flow-exact":
            assert row["ratios_examined"] < row["candidate_ratios"]


#: Decision-network cache capacity of the planner smoke sessions — smaller
#: than the workload's distinct-ratio count, so file-order repeats are
#: evicted before they recur while planned (grouped) repeats still hit.
PLANNER_SMOKE_CACHE_SIZE = 8

#: Dataset the planner smoke replays the mixed workload against.
PLANNER_SMOKE_DATASET = "social-tiny"


def run_planner_smoke(failures: list[str]) -> dict:
    """Batch-planner gate: planned order must beat file order on cache hits.

    Runs :func:`service_mixed_workload` twice through the service tier —
    planned and in file order — on fresh session pools with a deliberately
    small network cache, then asserts (1) bit-identical per-query answers
    and (2) strictly more realised result + network cache hits under the
    plan.  Appends failure strings to ``failures`` and returns a table row.
    """
    queries = service_mixed_workload()
    executor = BatchExecutor(
        lambda key: load_dataset(key),
        flow=FlowConfig(network_cache_size=PLANNER_SMOKE_CACHE_SIZE),
    )
    reports = {}
    for planned in (True, False):
        plan = plan_batch(queries, default_graph_key=PLANNER_SMOKE_DATASET, planned=planned)
        reports[planned] = executor.execute(plan)
    planned_hits = reports[True].realized_cache_hits()
    file_hits = reports[False].realized_cache_hits()
    planned_total = sum(planned_hits.values())
    file_total = sum(file_hits.values())
    planned_answers = [payload_answer(p) for p in reports[True].results_in_input_order()]
    file_answers = [payload_answer(p) for p in reports[False].results_in_input_order()]
    if planned_answers != file_answers:
        failures.append(
            "batch planner: planned and file-order runs disagree on per-query answers"
        )
    if planned_total <= file_total:
        failures.append(
            f"batch planner: planned order recorded {planned_total} cache hits, "
            f"not strictly more than file order's {file_total} "
            "(cache-aware reordering broken)"
        )
    return {
        "dataset": PLANNER_SMOKE_DATASET,
        "method": "batch-planner",
        "queries": len(queries),
        "planned_result_hits": planned_hits["result_cache_hits"],
        "planned_network_hits": planned_hits["network_cache_hits"],
        "file_result_hits": file_hits["result_cache_hits"],
        "file_network_hits": file_hits["network_cache_hits"],
    }


#: Dataset + method of the vector-backend smoke gate: the largest workload
#: the smoke can afford, with decision networks (~27k arcs) far above the
#: auto policy's threshold.
VECTOR_SMOKE_DATASET = "er-medium"
VECTOR_SMOKE_METHOD = "dc-exact"


def run_vector_smoke(failures: list[str]) -> dict:
    """Vector-backend gate: bit-identical answers, strictly lower wall-clock.

    Runs :data:`VECTOR_SMOKE_METHOD` on :data:`VECTOR_SMOKE_DATASET` once
    with ``dinic`` and once with ``numpy-push-relabel`` (fresh sessions),
    asserting (1) bit-identical density and vertex sets, (2) strictly lower
    numpy wall-clock on this large workload, and (3) that the ``auto``
    policy selects the vectorised backend here.  Appends failure strings to
    ``failures`` and returns a table row; when numpy is missing the gate is
    reported as skipped instead of failing.
    """
    if not has_vector_backend():
        return {
            "dataset": VECTOR_SMOKE_DATASET,
            "method": VECTOR_SMOKE_METHOD,
            "status": "skipped (numpy not importable)",
        }
    graph = load_dataset(VECTOR_SMOKE_DATASET)
    runs = {}
    for solver in ("dinic", VECTOR_SOLVER):
        # Best-of-2: the expected margin is 2-3x, so one repeat per solver
        # keeps a noisy-neighbour stall on a shared CI runner from flipping
        # the strict wall-clock comparison.
        walls = []
        for _ in range(2):
            session = DDSSession(graph.copy(), flow=FlowConfig(solver=solver))
            start = time.perf_counter()
            result = session.densest_subgraph(VECTOR_SMOKE_METHOD)
            walls.append(time.perf_counter() - start)
        runs[solver] = (min(walls), result)
    dinic_wall, dinic_result = runs["dinic"]
    numpy_wall, numpy_result = runs[VECTOR_SOLVER]
    if (
        dinic_result.density != numpy_result.density
        or sorted(map(str, dinic_result.s_nodes)) != sorted(map(str, numpy_result.s_nodes))
        or sorted(map(str, dinic_result.t_nodes)) != sorted(map(str, numpy_result.t_nodes))
    ):
        failures.append(
            f"vector backend: {VECTOR_SOLVER} and dinic disagree on the "
            f"{VECTOR_SMOKE_DATASET} subgraph "
            f"({numpy_result.density} vs {dinic_result.density})"
        )
    if numpy_wall >= dinic_wall:
        failures.append(
            f"vector backend: {VECTOR_SOLVER} wall-clock {numpy_wall:.2f}s is not "
            f"strictly below dinic's {dinic_wall:.2f}s on the large workload"
        )
    auto_session = DDSSession(graph.copy(), flow=FlowConfig(solver="auto"))
    auto_session.densest_subgraph(VECTOR_SMOKE_METHOD)
    auto_stats = auto_session.cache_stats()
    if auto_stats.get("auto_backends", {}).get(VECTOR_SOLVER, 0) < 1:
        failures.append(
            "vector backend: the auto policy never selected "
            f"{VECTOR_SOLVER} on {VECTOR_SMOKE_DATASET} "
            f"(auto_backends: {auto_stats.get('auto_backends')!r})"
        )
    return {
        "dataset": VECTOR_SMOKE_DATASET,
        "method": VECTOR_SMOKE_METHOD,
        "dinic_ms": round(dinic_wall * 1000, 1),
        "numpy_ms": round(numpy_wall * 1000, 1),
        "speedup": round(dinic_wall / numpy_wall, 2),
        "backend_selections": auto_stats.get("backend_selections", 0),
    }


#: Dataset + method of the batched-solve parity gate: a guess-sequence
#: workload whose decision networks (~300 arcs each) all sit below the auto
#: arc threshold — the regime where sequential vector solves lose to dinic
#: and the block-diagonal batch wins the vector width back.
BATCH_SMOKE_DATASET = "foodweb-tiny"
BATCH_SMOKE_METHOD = "flow-exact"


def run_batched_smoke(failures: list[str]) -> dict:
    """Batched-solve gate: bit-identical to the sequential auto run, and real.

    Runs :data:`BATCH_SMOKE_METHOD` on :data:`BATCH_SMOKE_DATASET` under the
    ``auto`` policy with batching disabled (``batch_size=1``) and enabled
    (the default), asserting (1) bit-identical density and vertex sets,
    (2) identical ``flow_calls`` (the lockstep search replays the sequential
    guess sequence exactly), and (3) that batching actually engaged —
    ``batched_solves`` > 0 with the vectorised backend recorded in
    ``auto_backends``.  Appends failure strings to ``failures`` and returns
    a table row; when numpy is missing the gate reports itself skipped.
    """
    if not has_vector_backend():
        return {
            "dataset": BATCH_SMOKE_DATASET,
            "method": BATCH_SMOKE_METHOD,
            "status": "skipped (numpy not importable)",
        }
    graph = load_dataset(BATCH_SMOKE_DATASET)
    runs = {}
    for batch_size in (1, FlowConfig().batch_size):
        session = DDSSession(
            graph.copy(), flow=FlowConfig(solver="auto", batch_size=batch_size)
        )
        start = time.perf_counter()
        result = session.densest_subgraph(BATCH_SMOKE_METHOD)
        wall = time.perf_counter() - start
        runs[batch_size] = (wall, result, session.cache_stats())
    seq_wall, seq_result, _ = runs[1]
    bat_wall, bat_result, bat_stats = runs[FlowConfig().batch_size]
    if (
        seq_result.density != bat_result.density
        or sorted(map(str, seq_result.s_nodes)) != sorted(map(str, bat_result.s_nodes))
        or sorted(map(str, seq_result.t_nodes)) != sorted(map(str, bat_result.t_nodes))
    ):
        failures.append(
            f"batched solve: batched and sequential auto runs disagree on the "
            f"{BATCH_SMOKE_DATASET} subgraph "
            f"({bat_result.density} vs {seq_result.density})"
        )
    if bat_result.stats["flow_calls"] != seq_result.stats["flow_calls"]:
        failures.append(
            f"batched solve: flow_calls {bat_result.stats['flow_calls']} != "
            f"sequential {seq_result.stats['flow_calls']} "
            "(the lockstep search no longer replays the guess sequence)"
        )
    if bat_stats.get("batched_solves", 0) < 1:
        failures.append(
            f"batched solve: batched_solves {bat_stats.get('batched_solves')} on "
            f"{BATCH_SMOKE_DATASET}/{BATCH_SMOKE_METHOD} — batching never engaged"
        )
    if bat_stats.get("auto_backends", {}).get(VECTOR_SOLVER, 0) < 1:
        failures.append(
            "batched solve: the auto policy never put batched members on "
            f"{VECTOR_SOLVER} (auto_backends: {bat_stats.get('auto_backends')!r})"
        )
    return {
        "dataset": BATCH_SMOKE_DATASET,
        "method": BATCH_SMOKE_METHOD,
        "sequential_ms": round(seq_wall * 1000, 1),
        "batched_ms": round(bat_wall * 1000, 1),
        "batched_solves": bat_stats.get("batched_solves", 0),
        "flow_calls": bat_result.stats["flow_calls"],
    }


#: Dataset + stream shape of the incremental update-parity gate.
UPDATE_SMOKE_DATASET = "social-tiny"
UPDATE_SMOKE_STEPS = 4
UPDATE_SMOKE_SEED = 77


def run_update_smoke(failures: list[str]) -> dict:
    """Update-parity gate: ``apply_updates`` must match cold rebuilds.

    Replays a deterministic edge-update stream (removals and insertions)
    through one live session two ways — with certification disabled, where
    every post-delta dc-exact answer must be **bit-identical** to a cold
    session built on the updated graph, and with certification enabled,
    where densities must still agree exactly and at least one entry must
    survive by certificate across the stream (the subsystem's reason to
    exist).  Appends failure strings to ``failures`` and returns a table
    row.
    """
    graph = load_dataset(UPDATE_SMOKE_DATASET)
    batches = edge_update_stream(
        graph, steps=UPDATE_SMOKE_STEPS, batch_size=1, p_add=0.3, seed=UPDATE_SMOKE_SEED
    )
    exact = DDSSession(graph.copy())
    certified = DDSSession(graph.copy())
    exact.densest_subgraph("dc-exact")
    certified.densest_subgraph("dc-exact")
    work = graph.copy()
    for step, (added, removed) in enumerate(batches):
        exact.apply_updates(added, removed, certify=False)
        certified.apply_updates(added, removed)
        work.apply_delta(added, removed)
        cold_result = DDSSession(work.copy()).densest_subgraph("dc-exact")
        exact_result = exact.densest_subgraph("dc-exact")
        if (
            exact_result.density != cold_result.density
            or exact_result.s_nodes != cold_result.s_nodes
            or exact_result.t_nodes != cold_result.t_nodes
        ):
            failures.append(
                f"update parity: step {step} on {UPDATE_SMOKE_DATASET} — uncertified "
                f"apply_updates diverged from the cold rebuild "
                f"({exact_result.density} vs {cold_result.density})"
            )
        certified_result = certified.densest_subgraph("dc-exact")
        if certified_result.density != cold_result.density:
            failures.append(
                f"update parity: step {step} on {UPDATE_SMOKE_DATASET} — certified "
                f"apply_updates lost optimality "
                f"({certified_result.density} vs {cold_result.density})"
            )
    stats = certified.cache_stats()
    if stats["certified_stale_hits"] < 1:
        failures.append(
            f"update parity: no cached answer survived certification across "
            f"{UPDATE_SMOKE_STEPS} deltas on {UPDATE_SMOKE_DATASET} "
            "(the certification tier never fired)"
        )
    return {
        "dataset": UPDATE_SMOKE_DATASET,
        "steps": UPDATE_SMOKE_STEPS,
        "updates_applied": stats["updates_applied"],
        "certified_stale_hits": stats["certified_stale_hits"],
        "local_research_runs": stats["local_research_runs"],
        "flow_calls": stats["flow_calls"],
    }


#: Default graph of the process-pool parity gate (per-query ``"dataset"``
#: fields in the mixed workload fan additional lanes out on top).
PROCPOOL_SMOKE_DATASET = "foodweb-tiny"


def run_procpool_smoke(failures: list[str]) -> dict:
    """Process-pool gate: bit-identical answers across jobs-1/jobs-2/threads.

    Runs the mixed E6 workload through ``BatchExecutor(process_pool=True)``
    with one and with two workers, plus the serial/thread reference, and
    asserts (1) bit-identical per-query answers across all three, (2) that
    the process runs actually used worker processes (no silent degradation),
    and (3) that zero shared-memory segments survive the runs.  Where
    shared memory is unavailable the gate reports itself skipped — that
    platform's degradation behaviour is covered by the test suite.  Appends
    failure strings to ``failures`` and returns a table row.
    """
    available, reason = process_pool_available()
    if not available:
        return {
            "dataset": PROCPOOL_SMOKE_DATASET,
            "method": "process-pool",
            "skipped": f"shared memory unavailable ({reason})",
        }
    # The mixed workload plus a second graph's lane, so jobs-2 genuinely
    # exercises the fingerprint shard routing across two workers
    # (foodweb-tiny and social-tiny hash to distinct shards of 2).
    queries = service_mixed_workload() + [
        {"query": "densest", "method": "core-exact", "dataset": "social-tiny"},
        {"query": "fixed-ratio", "ratio": 1.0, "dataset": "social-tiny"},
        {"query": "top-k", "k": 2, "dataset": "social-tiny"},
    ]
    plan = plan_batch(queries, default_graph_key=PROCPOOL_SMOKE_DATASET)
    executor = BatchExecutor(lambda key: load_dataset(key))
    reference = executor.execute(plan)
    reports = {}
    for jobs in (1, 2):
        reports[jobs] = BatchExecutor(
            lambda key: load_dataset(key), process_pool=True, max_workers=jobs
        ).execute(plan)
    reference_answers = [payload_answer(p) for p in reference.results_in_input_order()]
    for jobs, report in reports.items():
        answers = [payload_answer(p) for p in report.results_in_input_order()]
        if answers != reference_answers:
            failures.append(
                f"process pool: jobs-{jobs} process-mode answers diverged from the "
                "thread/serial reference (cross-process bit-identity broken)"
            )
        if report.executor_stats.get("mode") != "process-pool":
            failures.append(
                f"process pool: jobs-{jobs} run degraded to "
                f"{report.executor_stats.get('mode')!r} although shared memory "
                "is available"
            )
        if report.executor_stats.get("worker_crashes", 0) != 0:
            failures.append(
                f"process pool: jobs-{jobs} run recorded "
                f"{report.executor_stats['worker_crashes']} unexpected worker crashes"
            )
    if reports[2].executor_stats.get("workers_spawned", 0) < 2:
        failures.append(
            "process pool: jobs-2 run spawned fewer than 2 workers "
            "(fingerprint shard routing fan-out broken)"
        )
    leaked = service_shm.active_segment_names()
    if leaked:
        failures.append(
            f"process pool: {len(leaked)} shared-memory segments leaked after "
            f"shutdown: {', '.join(leaked)}"
        )
    return {
        "dataset": PROCPOOL_SMOKE_DATASET,
        "method": "process-pool",
        "queries": len(queries),
        "workers_jobs2": reports[2].executor_stats["workers_spawned"],
        "shm_bytes": reports[2].executor_stats["shm_bytes_mapped"],
        "crashes": reports[2].executor_stats["worker_crashes"],
        "segments_leaked": len(leaked),
    }


#: Default graph of the network-tier parity gate (the workload's
#: ``"dataset"`` fields fan a second graph's lane onto the other daemon).
NET_SMOKE_DATASET = "foodweb-tiny"


def run_net_smoke(failures: list[str]) -> dict:
    """Network-tier gate: loopback daemons serve bit-identical answers.

    Serves the mixed two-graph workload from two loopback ``ShardDaemon``s
    via ``BatchExecutor(remote_hosts=[...])`` and asserts (1) bit-identical
    per-query answers against the local thread/serial reference with every
    lane solved remotely, (2) zero sockets left open on either daemon after
    the batch, and (3) that killing one daemon mid-batch still completes
    bit-identically — retry ladder, then inline fallback — with the failure
    recorded in ``executor_stats``.  Appends failure strings to
    ``failures`` and returns a table row.
    """
    from repro.net import ShardDaemon

    queries = service_mixed_workload() + [
        {"query": "densest", "method": "core-exact", "dataset": "social-tiny"},
        {"query": "fixed-ratio", "ratio": 1.0, "dataset": "social-tiny"},
        {"query": "top-k", "k": 2, "dataset": "social-tiny"},
    ]
    plan = plan_batch(queries, default_graph_key=NET_SMOKE_DATASET)
    reference = BatchExecutor(lambda key: load_dataset(key)).execute(plan)
    reference_answers = [payload_answer(p) for p in reference.results_in_input_order()]

    # Healthy pass: two daemons, every lane remote, answers bit-identical.
    with ShardDaemon() as first, ShardDaemon() as second:
        hosts = [first.address, second.address]
        report = BatchExecutor(
            lambda key: load_dataset(key), remote_hosts=hosts
        ).execute(plan)
        answers = [payload_answer(p) for p in report.results_in_input_order()]
        stats = report.executor_stats
        if answers != reference_answers:
            failures.append(
                "network tier: loopback remote answers diverged from the "
                "thread/serial reference (cross-machine bit-identity broken)"
            )
        if stats.get("mode") != "remote" or stats.get("lanes_inline", 0) != 0:
            failures.append(
                "network tier: healthy two-daemon run did not solve every lane "
                f"remotely (mode={stats.get('mode')!r}, "
                f"lanes_inline={stats.get('lanes_inline')})"
            )
        if stats.get("remote_failures", 0) != 0:
            failures.append(
                "network tier: healthy two-daemon run recorded "
                f"{stats['remote_failures']} unexpected remote failures"
            )
        # Clients close first; give the selector loops a moment to reap the
        # resulting EOFs before declaring a socket leaked.
        deadline = time.monotonic() + 2.0
        while True:
            sockets_open = first.open_connections() + second.open_connections()
            if not sockets_open or time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        if sockets_open:
            failures.append(
                f"network tier: {sockets_open} sockets left open on the daemons "
                "after the batch (connection leak)"
            )
    lanes_remote = stats.get("lanes_remote", 0)

    # Fault pass: one daemon dies mid-batch; retry then inline fallback must
    # preserve bit-identical answers and record the failure.
    with (
        ShardDaemon() as healthy,
        ShardDaemon(
            fault_injection={"op": "solve", "kind": "exit", "times": 1}
        ) as doomed,
    ):
        fault_report = BatchExecutor(
            lambda key: load_dataset(key),
            remote_hosts=[healthy.address, doomed.address],
        ).execute(plan)
        fault_answers = [
            payload_answer(p) for p in fault_report.results_in_input_order()
        ]
        fault_stats = fault_report.executor_stats
        if fault_answers != reference_answers:
            failures.append(
                "network tier: answers diverged after a daemon was killed "
                "mid-batch (inline fallback broke bit-identity)"
            )
        if fault_stats.get("remote_failures", 0) < 1 or fault_stats.get(
            "lanes_inline", 0
        ) < 1:
            failures.append(
                "network tier: killed daemon was not recorded in executor_stats "
                f"(remote_failures={fault_stats.get('remote_failures')}, "
                f"lanes_inline={fault_stats.get('lanes_inline')})"
            )
    return {
        "dataset": NET_SMOKE_DATASET,
        "method": "remote:loopback",
        "queries": len(queries),
        "daemons": 2,
        "lanes_remote": lanes_remote,
        "remote_failures_faulted": fault_stats.get("remote_failures", 0),
        "lanes_inline_faulted": fault_stats.get("lanes_inline", 0),
        "sockets_leaked": sockets_open,
    }


#: Dataset + method of the deadline gate (reuses the planner-smoke graph).
DEADLINE_SMOKE_DATASET = "foodweb-tiny"
DEADLINE_SMOKE_METHOD = "dc-exact"


def run_deadline_smoke(failures: list[str]) -> dict:
    """Deadline gate: anytime partials bracket the optimum; hygiene holds.

    Three assertions: (1) a microscopic budget raises
    ``DeadlineExceeded`` carrying an anytime partial with a **finite**
    certified gap that brackets the true optimum, counted in the
    session's ``anytime_returns``; (2) a generous budget returns the
    **bit-identical** subgraph of a no-deadline run (armed checkpoints
    must be answer-neutral); (3) the shutdown hygiene counter — a drained
    daemon must join every worker thread (``unjoined_threads == 0``).
    Appends failure strings to ``failures`` and returns a table row.
    """
    from repro.exceptions import DeadlineExceeded
    from repro.net import ShardDaemon

    graph = load_dataset(DEADLINE_SMOKE_DATASET)
    reference = DDSSession(graph).densest_subgraph(DEADLINE_SMOKE_METHOD)

    generous = DDSSession(graph).densest_subgraph(
        DEADLINE_SMOKE_METHOD, deadline_ms=1e9
    )
    if (
        generous.density != reference.density
        or sorted(map(str, generous.s_nodes)) != sorted(map(str, reference.s_nodes))
        or sorted(map(str, generous.t_nodes)) != sorted(map(str, reference.t_nodes))
    ):
        failures.append(
            "deadline gate: a generous budget changed the answer "
            f"({generous.density} vs {reference.density}) — armed checkpoints "
            "must be answer-neutral"
        )

    session = DDSSession(graph)
    partial = None
    try:
        session.densest_subgraph(DEADLINE_SMOKE_METHOD, deadline_ms=1e-6)
        failures.append("deadline gate: a microscopic budget did not expire")
    except DeadlineExceeded as error:
        partial = error.partial
    gap = float("inf")
    if partial is None:
        failures.append("deadline gate: expiry carried no anytime partial")
    else:
        gap = partial.gap
        if not gap < float("inf"):
            failures.append(
                "deadline gate: anytime partial has no finite certified gap "
                f"(upper_bound={partial.upper_bound})"
            )
        if not (
            partial.density <= reference.density <= partial.upper_bound + 1e-9
        ):
            failures.append(
                "deadline gate: anytime bounds do not bracket the true optimum "
                f"({partial.density} <= {reference.density} <= {partial.upper_bound} "
                "violated)"
            )
    anytime_returns = session.cache_stats().get("anytime_returns", 0)
    if partial is not None and anytime_returns != 1:
        failures.append(
            f"deadline gate: session counted {anytime_returns} anytime returns, "
            "expected 1"
        )

    # Shutdown hygiene: a drained daemon joins every worker thread.
    daemon = ShardDaemon()
    daemon.start()
    daemon.drain(grace_s=10.0)
    daemon.join(timeout=30)
    unjoined = daemon.daemon_stats().get("unjoined_threads", 0)
    if unjoined:
        failures.append(
            f"deadline gate: drained daemon left {unjoined} unjoined worker "
            "thread(s) (shutdown hygiene broken)"
        )

    return {
        "dataset": DEADLINE_SMOKE_DATASET,
        "method": DEADLINE_SMOKE_METHOD,
        "anytime_gap": round(gap, 4) if gap < float("inf") else "inf",
        "anytime_density": round(partial.density, 4) if partial is not None else None,
        "true_density": round(reference.density, 4),
        "anytime_returns": anytime_returns,
        "generous_identical": generous.density == reference.density,
        "unjoined_threads": unjoined,
    }


def run_smoke() -> int:
    """Fast flow-call regression gate (used by CI; no pytest required)."""
    failures: list[str] = []
    rows: list[dict] = []
    cold_config = ExactConfig(flow=FlowConfig(warm_start=False))
    for (dataset, method), bound in SMOKE_FLOW_CALL_BOUNDS.items():
        graph = load_dataset(dataset)
        result = DDSSession(graph).densest_subgraph(method)
        stats = result.stats
        cold = DDSSession(graph).densest_subgraph(method, config=cold_config)
        rows.append(
            {
                "dataset": dataset,
                "method": method,
                "flow_calls": stats["flow_calls"],
                "seed_bound": bound,
                "networks_built": stats["networks_built"],
                "networks_reused": stats["networks_reused"],
                "fixed_ratio_searches": stats["fixed_ratio_searches"],
                "warm_starts_used": stats["warm_starts_used"],
                "arcs_pushed": stats["arcs_pushed"],
                "cold_arcs_pushed": cold.stats["arcs_pushed"],
            }
        )
        if stats["flow_calls"] > bound:
            failures.append(
                f"{dataset}/{method}: flow_calls {stats['flow_calls']} > seed bound {bound}"
            )
        # Every fixed-ratio search must use exactly one network — built from
        # scratch or served by the session network cache.
        if stats["networks_built"] + stats["networks_reused"] != stats["fixed_ratio_searches"]:
            failures.append(
                f"{dataset}/{method}: networks_built {stats['networks_built']} + "
                f"networks_reused {stats['networks_reused']} != "
                f"fixed_ratio_searches {stats['fixed_ratio_searches']}"
            )
        # The coarse->refine interior probes must hit the network cache, so
        # strictly fewer networks are built than fixed-ratio searches run.
        if stats["networks_built"] >= stats["fixed_ratio_searches"]:
            failures.append(
                f"{dataset}/{method}: networks_built {stats['networks_built']} did not drop "
                f"below fixed_ratio_searches {stats['fixed_ratio_searches']} "
                "(probe-network reuse broken)"
            )
        # Warm starting must actually engage on the default path ...
        if stats["warm_starts_used"] < 1:
            failures.append(
                f"{dataset}/{method}: warm_starts_used {stats['warm_starts_used']} < 1 "
                "(warm-start residual reuse broken)"
            )
        # ... and must strictly reduce flow work versus a cold run ...
        if stats["arcs_pushed"] >= cold.stats["arcs_pushed"]:
            failures.append(
                f"{dataset}/{method}: warm arcs_pushed {stats['arcs_pushed']} did not drop "
                f"below cold arcs_pushed {cold.stats['arcs_pushed']}"
            )
        # ... while leaving the answer bit-identical.
        if (
            result.density != cold.density
            or sorted(map(str, result.s_nodes)) != sorted(map(str, cold.s_nodes))
            or sorted(map(str, result.t_nodes)) != sorted(map(str, cold.t_nodes))
        ):
            failures.append(
                f"{dataset}/{method}: warm and cold runs disagree on the subgraph "
                f"({result.density} vs {cold.density})"
            )
    print(format_table(rows, title="E6 smoke: flow-call regression gate"))
    planner_row = run_planner_smoke(failures)
    print(format_table([planner_row], title="E6 smoke: batch-planner cache-hit gate"))
    vector_row = run_vector_smoke(failures)
    print(format_table([vector_row], title="E6 smoke: vectorised-backend gate"))
    batched_row = run_batched_smoke(failures)
    print(format_table([batched_row], title="E6 smoke: batched-solve parity gate"))
    update_row = run_update_smoke(failures)
    print(format_table([update_row], title="E6 smoke: incremental update-parity gate"))
    procpool_row = run_procpool_smoke(failures)
    print(format_table([procpool_row], title="E6 smoke: process-pool parity gate"))
    net_row = run_net_smoke(failures)
    print(format_table([net_row], title="E6 smoke: network-tier parity gate"))
    deadline_row = run_deadline_smoke(failures)
    print(format_table([deadline_row], title="E6 smoke: deadline anytime gate"))
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: no flow-call regressions")
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    print("usage: bench_e6_flowcalls.py --smoke  (or run under pytest for the full table)")
    sys.exit(2)
