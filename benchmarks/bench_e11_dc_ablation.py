"""E11 — ablation of the exact-algorithm design choices.

Three configurations on each small dataset:

* DCExact seeded with a cheap peel (no core machinery at all),
* DCExact seeded with the CoreApprox incumbent (tight bounds, full-graph
  networks),
* CoreExact (tight bounds + core-restricted networks).

The deltas isolate how much of CoreExact's advantage comes from the better
incumbent/upper bound versus from shrinking the flow networks.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.datasets.registry import dataset_names, load_dataset
from repro.utils.timer import time_call

_rows: list[dict] = []

CONFIGURATIONS = {
    "dc (peel seed)": lambda graph: dc_exact(graph, seed_with_core=False),
    "dc (core seed)": lambda graph: dc_exact(graph, seed_with_core=True),
    "core-exact": core_exact,
}


@pytest.mark.parametrize("dataset", dataset_names("small"))
@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_e11_configurations(benchmark, dataset, config):
    graph = load_dataset(dataset)
    solver = CONFIGURATIONS[config]
    result, seconds = time_call(lambda: solver(graph))
    benchmark.pedantic(lambda: solver(graph), rounds=1, iterations=1)
    _rows.append(
        {
            "dataset": dataset,
            "config": config,
            "density": round(result.density, 4),
            "flow_calls": result.stats["flow_calls"],
            "max_network_nodes": max(result.stats["network_nodes"], default=0),
            "seconds": round(seconds, 3),
        }
    )
    assert result.is_exact


def test_e11_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E11: exact-algorithm ablation (incumbent seed vs core restriction)"))
    # All configurations must agree on the optimum for every dataset.
    by_dataset: dict[str, set[float]] = {}
    for row in _rows:
        by_dataset.setdefault(row["dataset"], set()).add(row["density"])
    for dataset, densities in by_dataset.items():
        assert max(densities) - min(densities) < 1e-6, dataset
