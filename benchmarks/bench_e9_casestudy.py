"""E9 — case studies (paper analogue: the qualitative "what does the DDS mean" section).

Two planted-ground-truth graphs: a review-boosting ring in a rating network
and a hub/authority block in a web-like graph.  The benchmark scores how well
the S/T sides of the DDS answer recover the planted roles, and contrasts with
the undirected densest subgraph, which cannot separate the roles at all.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_table
from repro.session import DDSSession
from repro.datasets.casestudy import hub_authority_case, precision_recall, rating_fraud_case
from repro.undirected import charikar_peel

_rows: list[dict] = []
_CASES = {
    "rating-fraud": lambda: rating_fraud_case(seed=7),
    "hub-authority": lambda: hub_authority_case(seed=8),
}


@pytest.mark.parametrize("case_name", sorted(_CASES))
@pytest.mark.parametrize("method", ["core-approx", "core-exact"])
def test_e9_role_recovery(benchmark, case_name, method):
    case = _CASES[case_name]()
    result = benchmark.pedantic(
        lambda: DDSSession(case.graph).densest_subgraph(method), rounds=1, iterations=1
    )
    s_precision, s_recall = precision_recall(result.s_nodes, case.true_s)
    t_precision, t_recall = precision_recall(result.t_nodes, case.true_t)
    _rows.append(
        {
            "case": case_name,
            "method": method,
            "density": round(result.density, 3),
            "S_precision": round(s_precision, 3),
            "S_recall": round(s_recall, 3),
            "T_precision": round(t_precision, 3),
            "T_recall": round(t_recall, 3),
        }
    )
    assert s_recall >= 0.8
    assert t_recall >= 0.8


@pytest.mark.parametrize("case_name", sorted(_CASES))
def test_e9_undirected_baseline(benchmark, case_name):
    case = _CASES[case_name]()
    result = benchmark.pedantic(lambda: charikar_peel(case.graph), rounds=1, iterations=1)
    s_precision, _ = precision_recall(result.nodes, case.true_s)
    t_precision, _ = precision_recall(result.nodes, case.true_t)
    _rows.append(
        {
            "case": case_name,
            "method": "undirected (charikar)",
            "density": round(result.density, 3),
            "S_precision": round(s_precision, 3),
            "S_recall": "-",
            "T_precision": round(t_precision, 3),
            "T_recall": "-",
        }
    )


def test_e9_emit_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E9: case-study role recovery (planted ground truth)"))
    assert _rows
