"""E7 — flow-network shrinkage from core-based pruning (paper analogue: the
"size of flow networks across iterations" figure).

For one small dataset, report the sizes (node counts) of the successive
decision networks built by DCExact (always the whole graph) and by CoreExact
(restricted to the containing [x, y]-core, which tightens as the incumbent
improves).  The expected shape: CoreExact's networks start comparable and
then collapse to a small fraction of DCExact's.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_series, format_table
from repro.session import DDSSession
from repro.datasets.registry import load_dataset

DATASETS = ["advogato-small", "flights-small"]
_rows: list[dict] = []
_series: list[str] = []


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("method", ["dc-exact", "core-exact"])
def test_e7_network_sizes(benchmark, dataset, method):
    graph = load_dataset(dataset)
    result = benchmark.pedantic(
        lambda: DDSSession(graph).densest_subgraph(method), rounds=1, iterations=1
    )
    # ``network_nodes`` records the (retuned) network size per flow call;
    # actual construction counts live in ``networks_built``.
    sizes = result.stats["network_nodes"]
    assert sizes, "exact solvers must build at least one network"
    _rows.append(
        {
            "dataset": dataset,
            "method": method,
            "flow_calls": len(sizes),
            "networks_built": result.stats["networks_built"],
            "first_network_nodes": sizes[0],
            "median_network_nodes": sorted(sizes)[len(sizes) // 2],
            "last_network_nodes": sizes[-1],
            "min_network_nodes": min(sizes),
        }
    )
    # Sampled trajectory (every ~10th network) for the figure-style series.
    step = max(len(sizes) // 12, 1)
    points = [(index, float(size)) for index, size in enumerate(sizes)][::step]
    _series.append(
        format_series(
            "flow call #",
            "network nodes",
            points,
            title=f"E7: network-size trajectory — {method} on {dataset}",
        )
    )


def test_e7_emit(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(format_table(_rows, title="E7: decision-network sizes (core pruning effect)"))
    for series in _series:
        emit(series)
    # CoreExact's smallest network must be (much) smaller than DCExact's on
    # the same dataset.
    by_key = {(row["dataset"], row["method"]): row for row in _rows}
    for dataset in DATASETS:
        core_row = by_key[(dataset, "core-exact")]
        dc_row = by_key[(dataset, "dc-exact")]
        assert core_row["min_network_nodes"] <= dc_row["min_network_nodes"]
