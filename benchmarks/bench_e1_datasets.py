"""E1 — dataset statistics table (paper analogue: the "Datasets" table).

For every registered dataset: nodes, edges, maximum out/in degree, number of
weakly connected components, and the maximum [x, y]-core product (the
quantity that drives both the approximation guarantee and the exact pruning).
"""

from __future__ import annotations

from conftest import emit

from repro.bench.harness import format_table
from repro.core.xycore import max_xy_core
from repro.datasets.registry import dataset_names, dataset_specs, load_dataset
from repro.graph.properties import graph_summary


def _dataset_row(name: str) -> dict:
    graph = load_dataset(name)
    summary = graph_summary(graph)
    core = max_xy_core(graph)
    spec = next(spec for spec in dataset_specs() if spec.name == name)
    return {
        "dataset": name,
        "tier": spec.tier,
        "nodes": summary["nodes"],
        "edges": summary["edges"],
        "max_dout": summary["max_out_degree"],
        "max_din": summary["max_in_degree"],
        "components": summary["components"],
        "core_x": core.x,
        "core_y": core.y,
        "core_xy": core.product,
    }


def test_e1_dataset_statistics(benchmark):
    small_and_medium = dataset_names("small") + dataset_names("medium")

    def build_table():
        return [_dataset_row(name) for name in small_and_medium]

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Large datasets are included in the printed table but kept out of the
    # timed section so the benchmark number reflects a stable workload.
    rows = rows + [_dataset_row(name) for name in dataset_names("large")]
    emit(format_table(rows, title="E1: dataset statistics (paper Table 'Datasets')"))
    assert all(row["edges"] > 0 for row in rows)
