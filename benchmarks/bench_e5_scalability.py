"""E5 — scalability with graph size (paper analogue: the "vary |E|" figure).

Each approximation algorithm is timed on edge-sampled prefixes (20%..100%) of
a large heavy-tailed graph.  Expected shape: both algorithms grow roughly
linearly in the number of edges, with CoreApprox holding a sizeable constant-
factor lead over the peeling baseline.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench.harness import format_series
from repro.bench.workloads import edge_fraction_subgraph
from repro.session import DDSSession
from repro.datasets.registry import load_dataset
from repro.utils.timer import time_call

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
DATASET = "citation-large"
_series: dict[str, list[tuple[str, float]]] = {"core-approx": [], "peel-approx": []}


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("method", ["core-approx", "peel-approx"])
def test_e5_scalability(benchmark, fraction, method):
    base = load_dataset(DATASET)
    sample = edge_fraction_subgraph(base, fraction, seed=int(fraction * 100))
    result, seconds = time_call(lambda: DDSSession(sample).densest_subgraph(method))
    benchmark.pedantic(
        lambda: DDSSession(sample).densest_subgraph(method), rounds=1, iterations=1
    )
    _series[method].append((f"{int(fraction * 100)}% ({sample.num_edges} edges)", seconds))
    assert result.density > 0


def test_e5_emit_series(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method, points in _series.items():
        emit(
            format_series(
                "edge fraction",
                "seconds",
                points,
                title=f"E5: scalability of {method} on {DATASET}",
            )
        )
    assert all(_series.values())
